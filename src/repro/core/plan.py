"""First-class online-phase query plans (Section 5.4, reified).

The paper's headline online result is a *decision*: for every top-k
query, compare the estimated cost of the regular staged plan against the
DGJ early-termination stacks and run the cheaper one (Tables 2-3,
Figures 14-15).  This module turns that decision into a durable object
instead of a side effect:

``QueryPlan``
    What a method decided to run: the chosen strategy, the pairs table,
    and every alternative's estimated + calibrated cost.  Rendered by
    :meth:`QueryPlan.display` as a Figure-14/15-style plan tree.
``PlanClass``
    The cache key — a query's *class*: entity pair, constraint shape
    with selectivity bucket, ``l``, k-bucket, and ranking.  Queries in
    the same class share one plan, so repeated-shape traffic skips the
    optimizer entirely.
``Planner``
    Produces plans.  Subsumes the cost logic previously inlined in
    ``core/methods/optimized.py``: the System-R estimate for the SQL4
    block plus final sort, and the Theorem-1 dynamic programs for the
    IDGJ/HDGJ stacks — then applies the calibrator's per-strategy scale
    factors before choosing.
``CostCalibrator``
    Learns per-strategy scale factors from (estimated cost, observed
    work) feedback: the factor is the geometric mean of observed/
    estimated ratios, so a systematically mispriced strategy stops being
    chosen.  Its ``version`` bumps when a factor drifts materially,
    which lazily invalidates cached plans.
``PlanCache``
    A small LRU over ``PlanClass`` keys with hit/miss counters, owned by
    :class:`~repro.core.engine.TopologySearchSystem` and invalidated by
    ``build_generation`` (like the result cache in :mod:`repro.service`).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.query import (
    AttributeConstraint,
    ConjunctionConstraint,
    Constraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
)
from repro.core.ranking import score_column
from repro.relational.expressions import ColumnRef, Comparison
from repro.relational.optimizer import cost as C
from repro.relational.optimizer.dgj_cost import (
    DgjLevel,
    hdgj_stack_cost,
    idgj_stack_cost,
)
from repro.relational.optimizer.logical import build_block
from repro.relational.sql.tokens import sql_quote

# Strategy names shared by plans, methods, and the calibrator.
STRATEGY_REGULAR = "regular"
STRATEGY_ET_IDGJ = "et-idgj"
STRATEGY_ET_HDGJ = "et-hdgj"
STRATEGY_PER_TOPOLOGY = "per-topology"
ET_STRATEGIES = (STRATEGY_ET_IDGJ, STRATEGY_ET_HDGJ)

# k used for pricing when a cost-based plan is asked about a k-less
# query (matches the pre-refactor ``query.k or 10``).
DEFAULT_COST_K = 10

# Executor counters -> abstract work units, on the cost model's scale
# (cost.py): the calibrator compares these against estimated costs.
WORK_UNIT_WEIGHTS: Dict[str, float] = {
    "rows_scanned": C.ROW_COST,
    "index_probes": C.INDEX_PROBE_COST,
    "rows_joined": C.HASH_PROBE_COST,
    "rows_emitted": C.OUTPUT_ROW_COST,
    "subqueries_run": 5.0,
}


def work_units(work: Dict[str, int]) -> float:
    """Collapse executor counters into one scalar on the cost model's
    abstract scale — the "observed cost" side of calibration."""
    return float(
        sum(WORK_UNIT_WEIGHTS.get(name, 0.0) * count for name, count in work.items())
    )


def calibration_key(pairs_table: Optional[str], strategy: str) -> str:
    """The calibrator's fit key.  Factors are scoped per (pairs table,
    strategy): the full- and fast- families execute against different
    tables with different estimate regimes (AllTops single join vs
    LeftTops + staged pruned checks), so their feedback must not blend
    into one shared factor."""
    return f"{pairs_table}:{strategy}" if pairs_table else strategy


def selectivity_bucket(selectivity: float) -> int:
    """Decimal order of magnitude of a selectivity (0 = everything,
    -1 = ~10%, ...).  Two constraints in the same bucket are treated as
    the same plan class."""
    clamped = min(1.0, max(1e-9, selectivity))
    return int(math.floor(math.log10(clamped) + 1e-12))


def k_bucket(k: Optional[int]) -> int:
    """Power-of-two bucket for the top-k cut-off (0 = exhaustive)."""
    if k is None:
        return 0
    return 1 << max(0, (int(k) - 1).bit_length())


def constraint_structure(constraint: Constraint) -> Tuple:
    """Structural shape of a constraint, value-free: which columns and
    operators it touches, not which literals."""
    if isinstance(constraint, NoConstraint):
        return ("all",)
    if isinstance(constraint, KeywordConstraint):
        return ("contains", constraint.column.lower())
    if isinstance(constraint, AttributeConstraint):
        return ("cmp", constraint.column.lower(), constraint.op)
    if isinstance(constraint, ConjunctionConstraint):
        return ("and",) + tuple(constraint_structure(p) for p in constraint.parts)
    return (type(constraint).__name__.lower(),)


@dataclass(frozen=True)
class PlanClass:
    """A query's equivalence class for planning purposes.

    Two queries in the same class get the same plan: same method and
    strategy menu, same entity pair (in query orientation), same
    constraint shapes *and* selectivity buckets, same ``l``, the same
    k-bucket, and the same ranking scheme."""

    method: str
    strategies: Tuple[str, ...]
    entity1: str
    entity2: str
    shape1: Tuple
    shape2: Tuple
    max_length: int
    k_bucket: int
    ranking: str

    def describe(self) -> str:
        k_part = f", k<={self.k_bucket} by {self.ranking}" if self.k_bucket else ""
        return (
            f"({self.entity1} x {self.entity2}, l={self.max_length}{k_part}, "
            f"sel1~1e{self.shape1[-1]}, sel2~1e{self.shape2[-1]})"
        )


@dataclass(frozen=True)
class PlanAlternative:
    """One strategy the planner considered, with its raw estimate and
    the calibration factor in force when the plan was made."""

    strategy: str
    estimated_cost: Optional[float]
    calibration_factor: float = 1.0

    @property
    def calibrated_cost(self) -> Optional[float]:
        if self.estimated_cost is None:
            return None
        return self.estimated_cost * self.calibration_factor


@dataclass(frozen=True)
class QueryPlan:
    """What a method will execute for one plan class.

    ``strategy`` is the chosen alternative; ``alternatives`` keeps every
    considered strategy with its estimated and calibrated cost (the
    EXPLAIN payload).  ``choice`` derives the old free-text
    ``plan_choice`` label for backward compatibility."""

    method: str
    strategy: str
    plan_class: PlanClass
    alternatives: Tuple[PlanAlternative, ...]
    pairs_table: Optional[str] = None
    oriented: bool = True
    store_pair: Tuple[str, str] = ("", "")
    is_topk: bool = False
    include_pruned_checks: bool = False
    costed: bool = False
    # True only for methods that price their strategy on the hot path
    # (never merely because an EXPLAIN forced costs): gates whether
    # executions of this plan feed the calibrator.
    feeds_calibration: bool = False

    # ------------------------------------------------------------------
    @property
    def calibration_key(self) -> str:
        """The calibrator fit this plan's executions feed/read."""
        return calibration_key(self.pairs_table, self.strategy)

    @property
    def et_flavor(self) -> Optional[str]:
        """DGJ flavor ('idgj'/'hdgj') when an ET strategy was chosen."""
        if self.strategy.startswith("et-"):
            return self.strategy[3:]
        return None

    @property
    def chosen(self) -> Optional[PlanAlternative]:
        for alternative in self.alternatives:
            if alternative.strategy == self.strategy:
                return alternative
        return None

    @property
    def estimated_cost(self) -> Optional[float]:
        chosen = self.chosen
        return chosen.estimated_cost if chosen is not None else None

    @property
    def calibrated_cost(self) -> Optional[float]:
        chosen = self.chosen
        return chosen.calibrated_cost if chosen is not None else None

    @property
    def has_costs(self) -> bool:
        return any(a.estimated_cost is not None for a in self.alternatives)

    @property
    def choice(self) -> str:
        """Short label (the old ``MethodResult.plan_choice`` string)."""
        if len(self.alternatives) > 1 and self.has_costs:
            inner = ", ".join(
                f"{a.strategy}={a.calibrated_cost:.0f}"
                for a in self.alternatives
                if a.calibrated_cost is not None
            )
            return f"{self.strategy} ({inner})"
        return self.strategy

    # ------------------------------------------------------------------
    def display(self, query: Optional[TopologyQuery] = None) -> str:
        """Render the plan the way the paper draws Figures 14/15: the
        alternatives with their costs, then the chosen operator tree.
        Pass the concrete ``query`` to show its actual constraints."""
        lines = [f"QueryPlan[{self.method}] strategy={self.strategy}"]
        if query is not None:
            lines.append(f"  query: {query.describe()}")
        lines.append(f"  class: {self.plan_class.describe()}")
        if self.has_costs:
            lines.append("  alternatives (est x factor -> calibrated):")
            for alt in self.alternatives:
                marker = "*" if alt.strategy == self.strategy else " "
                if alt.estimated_cost is None:
                    lines.append(f"  {marker} {alt.strategy:<10} n/a")
                    continue
                lines.append(
                    f"  {marker} {alt.strategy:<10} {alt.estimated_cost:12.1f}"
                    f" x {alt.calibration_factor:<6.3f} -> {alt.calibrated_cost:12.1f}"
                )
        lines.append("  operator tree:")
        lines.extend("    " + line for line in self._tree(query))
        return "\n".join(lines)

    def _tree(self, query: Optional[TopologyQuery]) -> List[str]:
        pc = self.plan_class
        cond1 = query.constraint1.to_sql("q1") if query else "<constraint1>"
        cond2 = query.constraint2.to_sql("q2") if query else "<constraint2>"
        if self.strategy == STRATEGY_PER_TOPOLOGY:
            return [
                "ForEach(candidate topology T)",
                "└─ Exists(path-condition chain joins of T",
                f"          over {pc.entity1} q1 [{cond1}], {pc.entity2} q2 [{cond2}])",
            ]
        if self.strategy in ET_STRATEGIES:  # Figure 15
            entity_op = "IDGJ" if self.strategy == STRATEGY_ET_IDGJ else "HDGJ"
            score = score_column(pc.ranking)
            pruned = ", PRUNED=FALSE" if self.include_pruned_checks else ""
            lines = [
                f"FirstPerGroup(stop after k<={pc.k_bucket or '?'} groups)",
                f"└─ {entity_op}({pc.entity2} q2, residual [{cond2}])",
                f"   └─ {entity_op}({pc.entity1} q1, residual [{cond1}])",
                f"      └─ IDGJ({self.pairs_table} on TID)",
                f"         └─ GroupFilter(ES1={sql_quote(self.store_pair[0])}, "
                f"ES2={sql_quote(self.store_pair[1])}{pruned})",
                f"            └─ OrderedIndexScan(TopInfo.{score} desc)",
            ]
            if self.include_pruned_checks:
                lines.append("[pruned topologies merged by score via SQL5 checks]")
            return lines
        # Regular strategy (Figure 14): System-R over the join block.
        tables = [
            f"{pc.entity1} q1 [{cond1}]",
            f"{pc.entity2} q2 [{cond2}]",
            f"{self.pairs_table or '<pairs>'}",
        ]
        if self.is_topk:
            score = score_column(pc.ranking)
            head = f"TopN(k<={pc.k_bucket or '?'}, {score} desc, TID desc)"
            tables.append("TopInfo T")
        else:
            head = "Distinct(TID)"
        lines = [head, "└─ System-R join block over:"]
        lines.extend(f"     {t}" for t in tables)
        if self.include_pruned_checks:
            if self.is_topk:
                lines.append("[staged SQL5 checks for pruned topologies that can reach the top k]")
            else:
                lines.append("[one UNION branch (SQL1) per pruned topology]")
        return lines


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
@dataclass
class _StrategyFit:
    """Running per-strategy aggregates: geometric-mean ratio state."""

    count: int = 0
    sum_log_ratio: float = 0.0
    # Factor in force at the last version bump; drift beyond
    # DRIFT_RATIO from it triggers the next bump.
    last_applied_factor: float = 1.0


class CostCalibrator:
    """Per-strategy scale factors learned from execution feedback.

    Fits are keyed by :func:`calibration_key` — (pairs table, strategy)
    — so the full- and fast- families' different execution regimes do
    not blend into one factor (the key is opaque to this class).  Each
    observation is (estimated cost, observed work units) for the
    strategy that actually ran.  The factor applied by the planner is
    the geometric mean of observed/estimated ratios — robust to the
    abstract-unit mismatch between the cost model and the executor
    counters, and stable under skewed workloads.  ``version`` increments
    whenever a factor drifts more than :data:`DRIFT_RATIO` from the
    value cached plans were made with, so stale plans re-plan lazily."""

    MIN_OBSERVATIONS = 3
    DRIFT_RATIO = 1.25
    FACTOR_BOUNDS = (1e-3, 1e3)
    _LOG_CLAMP = 12.0

    def __init__(self) -> None:
        self._fits: Dict[str, _StrategyFit] = {}
        self.version = 0
        # record() is a read-modify-write over the fit aggregates and
        # the version; every concurrent engine execution feeds it, so
        # the whole fold happens under one lock (reads take it too — a
        # torn count/sum pair would skew the geometric mean).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def factor(self, strategy: str) -> float:
        """Scale factor for a strategy (1.0 until enough feedback)."""
        with self._lock:
            return self._factor_locked(strategy)

    def _factor_locked(self, strategy: str) -> float:
        fit = self._fits.get(strategy)
        if fit is None or fit.count < self.MIN_OBSERVATIONS:
            return 1.0
        raw = math.exp(fit.sum_log_ratio / fit.count)
        low, high = self.FACTOR_BOUNDS
        return min(high, max(low, raw))

    def record(self, strategy: str, estimated: float, observed: float) -> None:
        """Fold one (estimated, observed) pair into the strategy's fit."""
        if estimated <= 0.0 or observed <= 0.0:
            return
        with self._lock:
            fit = self._fits.setdefault(strategy, _StrategyFit())
            fit.count += 1
            ratio = math.log(observed / estimated)
            fit.sum_log_ratio += max(-self._LOG_CLAMP, min(self._LOG_CLAMP, ratio))
            current = self._factor_locked(strategy)
            drift = current / fit.last_applied_factor
            if fit.count >= self.MIN_OBSERVATIONS and (
                drift > self.DRIFT_RATIO or drift < 1.0 / self.DRIFT_RATIO
            ):
                fit.last_applied_factor = current
                self.version += 1

    def observation_count(self, strategy: Optional[str] = None) -> int:
        with self._lock:
            if strategy is not None:
                fit = self._fits.get(strategy)
                return fit.count if fit else 0
            return sum(fit.count for fit in self._fits.values())

    def reset(self) -> None:
        with self._lock:
            self._fits.clear()
            self.version += 1

    # ------------------------------------------------------------------
    # Introspection + persistence (repro.persist stores export_state()
    # in the snapshot meta so a restored service keeps learned factors).
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "version": self.version,
                "strategies": {
                    name: {"count": fit.count, "factor": self._factor_locked(name)}
                    for name, fit in sorted(self._fits.items())
                },
            }

    def export_state(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "version": self.version,
                "strategies": {
                    name: {
                        "count": fit.count,
                        "sum_log_ratio": fit.sum_log_ratio,
                        "last_applied_factor": fit.last_applied_factor,
                    }
                    for name, fit in sorted(self._fits.items())
                },
            }

    @classmethod
    def from_state(cls, state: Optional[Dict[str, Any]]) -> "CostCalibrator":
        calibrator = cls()
        if not state:
            return calibrator
        calibrator.version = int(state.get("version", 0))
        for name, fit in state.get("strategies", {}).items():
            calibrator._fits[name] = _StrategyFit(
                count=int(fit["count"]),
                sum_log_ratio=float(fit["sum_log_ratio"]),
                last_applied_factor=float(fit.get("last_applied_factor", 1.0)),
            )
        return calibrator


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanCacheStats:
    """Counters snapshot for the engine's plan cache."""

    hits: int
    misses: int
    size: int
    capacity: int
    invalidations: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0


class PlanCache:
    """LRU of ``PlanClass -> QueryPlan`` with calibrator versioning.

    An entry made under an older calibrator version is a miss (its
    calibrated costs — and possibly its choice — are stale) and is
    *evicted on discovery* — a dead entry must not keep occupying LRU
    capacity, where it could push out plans that are still live — and
    counted as an invalidation.  The caller re-plans and ``put``\\ s the
    replacement.

    Thread-safe: one internal lock covers every entry/counter mutation,
    so concurrent planners never corrupt the recency order or lose
    counter updates."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanClass, Tuple[int, QueryPlan]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(
        self,
        plan_class: PlanClass,
        version: int,
        require_costed: bool = False,
    ) -> Optional[QueryPlan]:
        """The cached plan, or ``None``.  An entry from an older
        calibrator version is evicted (and ``invalidations`` counted)
        before reporting the miss.  An uncosted entry when the caller
        needs costs (EXPLAIN) also misses, but stays resident: it is
        still a perfectly good hot-path plan, and the caller's costed
        replacement will overwrite it."""
        with self._lock:
            entry = self._entries.get(plan_class)
            if entry is not None and entry[0] != version:
                del self._entries[plan_class]
                self.invalidations += 1
                entry = None
            if entry is None or (require_costed and not entry[1].costed):
                self.misses += 1
                return None
            self._entries.move_to_end(plan_class)
            self.hits += 1
            return entry[1]

    def put(self, plan_class: PlanClass, version: int, plan: QueryPlan) -> None:
        with self._lock:
            if plan_class in self._entries:
                self._entries.move_to_end(plan_class)
            self._entries[plan_class] = (version, plan)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every plan (counters survive; only non-empty drops count
        as invalidations)."""
        with self._lock:
            if self._entries:
                self._entries.clear()
                self.invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self.hits,
                misses=self.misses,
                size=len(self._entries),
                capacity=self.capacity,
                invalidations=self.invalidations,
            )


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class Planner:
    """Produces :class:`QueryPlan` objects for the nine methods.

    Owns the cost estimation previously inlined in the ``*-Opt``
    methods: the System-R estimate for the regular join block (plus the
    final sort regular top-k plans cannot avoid, Section 5.2) and the
    Theorem-1 dynamic programs for the IDGJ/HDGJ stacks — with the
    calibrator's per-strategy factors applied before choosing."""

    def __init__(self, system) -> None:
        self.system = system

    @property
    def calibrator(self) -> CostCalibrator:
        return self.system.calibrator

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, query: TopologyQuery, method) -> PlanClass:
        """The query's plan class under ``method`` (the cache key)."""
        return PlanClass(
            method=method.name,
            strategies=tuple(method.plan_strategies),
            entity1=query.entity1,
            entity2=query.entity2,
            shape1=self._shape(query.constraint1, query.entity1),
            shape2=self._shape(query.constraint2, query.entity2),
            max_length=query.max_length,
            k_bucket=k_bucket(query.k),
            ranking=query.ranking,
        )

    def _shape(self, constraint: Constraint, entity: str) -> Tuple:
        selectivity = self.system.stats.predicate_selectivity(
            constraint.to_expression("x"), {"x": entity}
        )
        return constraint_structure(constraint) + (selectivity_bucket(selectivity),)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_for(self, method, query: TopologyQuery, with_costs: bool = False) -> QueryPlan:
        """Build the plan ``method`` should execute for ``query``.

        ``with_costs`` forces cost estimation even for methods that do
        not price their strategy on the hot path (the EXPLAIN case)."""
        system = self.system
        strategies = tuple(method.plan_strategies)
        pairs_table = getattr(method, "pairs_table", None)
        use_pruned_store = bool(getattr(method, "use_pruned_store", False))
        include_pruned = (
            bool(getattr(method, "include_pruned_checks", False)) or use_pruned_store
        )
        cost_based = bool(getattr(method, "cost_based", False))
        costed = cost_based or bool(getattr(method, "estimates_costs", False)) or with_costs

        alternatives: List[PlanAlternative] = []
        if costed:
            et_wanted = tuple(s for s in strategies if s in ET_STRATEGIES)
            et_costs: Dict[str, float] = {}
            if et_wanted:
                et_costs = self.et_stack_costs(
                    query, use_pruned_store, query.k or DEFAULT_COST_K,
                    flavors=et_wanted,
                )
            for strategy in strategies:
                if strategy == STRATEGY_REGULAR and pairs_table is not None:
                    raw: Optional[float] = self.regular_cost(
                        query, pairs_table, topk=bool(method.is_topk)
                    )
                elif strategy in et_costs:
                    raw = et_costs[strategy]
                else:
                    raw = None
                factor = (
                    self.calibrator.factor(calibration_key(pairs_table, strategy))
                    if raw is not None
                    else 1.0
                )
                alternatives.append(PlanAlternative(strategy, raw, factor))
        else:
            alternatives = [PlanAlternative(s, None, 1.0) for s in strategies]

        strategy = self._choose(alternatives) if cost_based else strategies[0]
        return QueryPlan(
            method=method.name,
            strategy=strategy,
            plan_class=self.classify(query, method),
            alternatives=tuple(alternatives),
            pairs_table=pairs_table,
            oriented=system.orientation(query),
            store_pair=system.store_entity_pair(query),
            is_topk=bool(method.is_topk),
            include_pruned_checks=include_pruned,
            costed=costed,
            feeds_calibration=cost_based
            or bool(getattr(method, "estimates_costs", False)),
        )

    @staticmethod
    def _choose(alternatives: Sequence[PlanAlternative]) -> str:
        """Pick the cheapest calibrated alternative, preserving the
        pre-refactor tie behavior: ties go to the regular plan, and
        between equal ET flavors IDGJ wins."""
        by_strategy = {
            a.strategy: a.calibrated_cost
            for a in alternatives
            if a.calibrated_cost is not None
        }
        if not by_strategy:
            return alternatives[0].strategy
        et = OrderedDict(
            (s, by_strategy[s]) for s in ET_STRATEGIES if s in by_strategy
        )
        if STRATEGY_REGULAR not in by_strategy:
            if et:
                return min(et, key=et.get)
            return alternatives[0].strategy
        if not et:
            return STRATEGY_REGULAR
        best_et = min(et, key=et.get)
        if et[best_et] < by_strategy[STRATEGY_REGULAR]:
            return best_et
        return STRATEGY_REGULAR

    # ------------------------------------------------------------------
    # Cost estimation (moved here from core/methods/optimized.py)
    # ------------------------------------------------------------------
    def stack_parameters(
        self, query: TopologyQuery, use_pruned_store: bool
    ) -> Tuple[List[DgjLevel], List[float]]:
        """DGJ stack statistics (Section 5.4.3): one level per
        constrained entity table, group cardinalities in score order."""
        store = self.system.require_store()
        stats = self.system.stats
        pair = self.system.store_entity_pair(query)
        topologies = [
            t
            for t in store.topologies.values()
            if t.entity_pair == pair
            and not (use_pruned_store and t.tid in store.pruned_tids)
        ]
        # Groups arrive in score order; Card_i = the topology's pair
        # count (one pairs-table row per related pair).
        topologies.sort(key=lambda t: (-t.scores[query.ranking], -t.tid))
        cards = [float(t.frequency) for t in topologies]

        levels: List[DgjLevel] = []
        for entity, constraint in (
            (query.entity1, query.constraint1),
            (query.entity2, query.constraint2),
        ):
            n = float(stats.row_count(entity))
            rho = stats.predicate_selectivity(
                constraint.to_expression("x"), {"x": entity}
            )
            levels.append(
                DgjLevel(
                    relation_rows=n,
                    probe_cost=C.INDEX_PROBE_COST,
                    local_selectivity=max(1e-9, min(1.0, rho)),
                    join_selectivity=1.0 / max(n, 1.0),
                )
            )
        return levels, cards

    def et_stack_costs(
        self,
        query: TopologyQuery,
        use_pruned_store: bool,
        k: int,
        flavors: Sequence[str] = ET_STRATEGIES,
    ) -> Dict[str, float]:
        """Theorem-1 expected costs for the requested DGJ flavors (the
        single-flavor ET methods skip the dynamic program they would
        discard)."""
        levels, cards = self.stack_parameters(query, use_pruned_store)
        costs: Dict[str, float] = {}
        if STRATEGY_ET_IDGJ in flavors:
            costs[STRATEGY_ET_IDGJ] = idgj_stack_cost(levels, cards, k)
        if STRATEGY_ET_HDGJ in flavors:
            costs[STRATEGY_ET_HDGJ] = hdgj_stack_cost(
                levels, cards, k, scan_row_cost=C.ROW_COST
            )
        return costs

    def regular_cost(
        self, query: TopologyQuery, pairs_table: str, topk: bool
    ) -> float:
        """Cost of the regular join block under the System-R enumerator
        — for top-k methods the SQL4 block plus the final sort that
        regular plans cannot avoid (Section 5.2)."""
        oriented = self.system.orientation(query)
        col1 = "e1" if oriented else "e2"
        col2 = "e2" if oriented else "e1"
        relations = [
            (query.entity1, "q1"),
            (query.entity2, "q2"),
            (pairs_table, "lt"),
        ]
        conjuncts = [
            query.constraint1.to_expression("q1"),
            query.constraint2.to_expression("q2"),
            Comparison("=", ColumnRef("q1", "id"), ColumnRef("lt", col1)),
            Comparison("=", ColumnRef("q2", "id"), ColumnRef("lt", col2)),
        ]
        if topk:
            relations.append(("TopInfo", "t"))
            conjuncts.append(
                Comparison("=", ColumnRef("t", "tid"), ColumnRef("lt", "tid"))
            )
        block = build_block(relations, conjuncts)
        optimizer = self.system.engine.planner.optimizer
        best = optimizer.optimize(block)
        if topk:
            return best.cost + C.sort_cost(best.est_rows)
        return best.cost
