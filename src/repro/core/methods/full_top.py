"""Full-Top (Section 3.2): query the precomputed AllTops table."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.methods.base import Method
from repro.core.plan import QueryPlan
from repro.core.query import TopologyQuery


class FullTopMethod(Method):
    """One SQL join of the satisfying entities against AllTops — the
    paper's example:

    .. code-block:: sql

        SELECT DISTINCT AT.TID
        FROM Protein P, DNA D, AllTops AT
        WHERE P.desc.ct('enzyme') AND D.type = 'mRNA'
          AND P.ID = AT.E1 AND D.ID = AT.E2
    """

    name = "full-top"
    pairs_table = "AllTops"

    def sql_for(self, query: TopologyQuery) -> str:
        from1, from2, cond1, cond2 = self._endpoint_sql(query)
        join1, join2 = self._pair_join_sql(query, "AT")
        return (
            f"SELECT DISTINCT AT.TID\n"
            f"FROM {from1}, {from2}, {self.pairs_table} AT\n"
            f"WHERE {cond1} AND {cond2}\n"
            f"  AND {join1} AND {join2}"
        )

    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        result = self.system.engine.execute(self.sql_for(query))
        tids = sorted(row[0] for row in result.rows)
        if query.k is None:
            return tids, None
        store = self.system.require_store()
        scored = {t: store.topology(t).scores[query.ranking] for t in tids}
        return self._rank(scored, query.k)
