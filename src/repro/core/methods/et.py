"""Early-termination methods (Section 5.3): DGJ operator stacks.

The plan mirrors the paper's Figure 15: a score-ordered index scan of
TopInfo feeds a stack of DGJ joins — first into the pairs table
(LeftTops / AllTops) on TID, then into each constrained entity table —
with the query predicates as residual filters inside the stack.  A
witness row for a topology makes the driver skip the rest of that
group; after k topologies the query stops.

Fast-Top-k-ET merges the pruned topologies into the score order: when
the next-best score belongs to a pruned topology, its SQL5 online check
runs before any lower-scored unpruned group is processed.

``flavor`` selects the DGJ implementation per entity level: ``idgj``
(index nested-loops) or ``hdgj`` (group-at-a-time hash join) — the
plans of Figure 15 (a) and (b).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.methods.base import Method
from repro.core.methods.fast_top import FastTopMethod
from repro.core.plan import QueryPlan
from repro.core.query import TopologyQuery
from repro.errors import TopologyError
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.relational.operators import (
    FirstPerGroup,
    Filter,
    GroupAware,
    GroupFilter,
    HDGJ,
    IDGJ,
    OrderedIndexScan,
    SeqScan,
)


class _EtBase(Method):
    is_topk = True
    estimates_costs = True
    pairs_table = "LeftTops"
    use_pruned_store = True
    include_pruned_checks = True

    def __init__(self, system, flavor: str = "idgj") -> None:
        super().__init__(system)
        if flavor not in ("idgj", "hdgj"):
            raise TopologyError("flavor must be 'idgj' or 'hdgj'")
        self.flavor = flavor
        self.plan_strategies = (f"et-{flavor}",)
        self._fast_top = FastTopMethod(system)

    # ------------------------------------------------------------------
    # Plan construction (Figure 15)
    # ------------------------------------------------------------------
    def build_stack(self, query: TopologyQuery) -> GroupAware:
        db = self.system.database
        topinfo = db.table("TopInfo")
        score_col = self._score_col(query)
        sorted_index = topinfo.sorted_index_on(score_col)
        if sorted_index is None:
            raise TopologyError(f"no sorted index on TopInfo.{score_col}")
        tid_pos = topinfo.schema.column_position("TID")
        scan = OrderedIndexScan(
            topinfo,
            "t",
            sorted_index,
            descending=True,
            group_positions=[tid_pos],
            stats=db.stats,
        )
        es1, es2 = self.system.store_entity_pair(query)
        filters = [
            Comparison("=", ColumnRef("t", "es1"), Literal(es1)),
            Comparison("=", ColumnRef("t", "es2"), Literal(es2)),
        ]
        if self.include_pruned_checks:
            # Pruned topologies have no LeftTops rows; they are merged
            # in by score via their SQL5 checks instead.
            filters.append(Comparison("=", ColumnRef("t", "pruned"), Literal(False)))
        source: GroupAware = GroupFilter(scan, And(filters))

        pairs = db.table(self.pairs_table)
        tid_index = pairs.hash_index_on(["TID"])
        stack: GroupAware = IDGJ(
            source,
            pairs,
            "pt",
            tid_index,
            [source.layout.position("t", "tid")],
        )

        oriented = self.system.orientation(query)
        col1 = "e1" if oriented else "e2"
        col2 = "e2" if oriented else "e1"
        stack = self._entity_level(
            stack, query.entity1, "q1", col1, query.constraint1.to_expression("q1")
        )
        stack = self._entity_level(
            stack, query.entity2, "q2", col2, query.constraint2.to_expression("q2")
        )
        return stack

    def _entity_level(
        self,
        outer: GroupAware,
        entity_table: str,
        alias: str,
        pairs_column: str,
        predicate,
    ) -> GroupAware:
        db = self.system.database
        table = db.table(entity_table)
        key_pos = outer.layout.position("pt", pairs_column)
        if self.flavor == "idgj":
            pk_index = table.hash_index_on(["ID"])
            return IDGJ(outer, table, alias, pk_index, [key_pos], residual=predicate)

        def inner_factory(table=table, alias=alias, predicate=predicate):
            return Filter(SeqScan(table, alias, db.stats), predicate)

        id_pos = table.schema.column_position("ID")
        return HDGJ(outer, inner_factory, [key_pos], [id_pos])

    # ------------------------------------------------------------------
    # Driver: merge the DGJ stream with pruned-topology checks
    # ------------------------------------------------------------------
    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        if query.k is None:
            raise TopologyError(f"{self.name} requires a top-k query")
        stack = self.build_stack(query)
        stream = FirstPerGroup(stack, None)
        tid_pos = stream.layout.position("t", "tid")
        score_pos = stream.layout.position("t", self._score_col(query).lower())

        pruned: List = []
        if self.include_pruned_checks:
            pruned = sorted(
                self._fast_top.pruned_topologies(query),
                key=lambda t: (-t.scores[query.ranking], -t.tid),
            )
        pruned_idx = 0

        results: List[Tuple[int, float]] = []
        stream.open()
        try:
            pending = stream.next()
            while len(results) < query.k:
                stream_key = (
                    (pending[score_pos], pending[tid_pos]) if pending is not None else None
                )
                pruned_key = None
                if pruned_idx < len(pruned):
                    candidate = pruned[pruned_idx]
                    pruned_key = (candidate.scores[query.ranking], candidate.tid)
                if stream_key is None and pruned_key is None:
                    break
                if pruned_key is not None and (
                    stream_key is None or pruned_key > stream_key
                ):
                    topology = pruned[pruned_idx]
                    pruned_idx += 1
                    check = self.system.engine.execute(
                        self._fast_top.pruned_branch_sql(query, topology)
                        + "\nFETCH FIRST 1 ROWS ONLY"
                    )
                    if check.rows:
                        results.append((topology.tid, pruned_key[0]))
                else:
                    results.append((pending[tid_pos], pending[score_pos]))
                    pending = stream.next()
        finally:
            stream.close()

        tids = [t for t, _ in results]
        scores = [s for _, s in results]
        return tids, scores


class FullTopKEtMethod(_EtBase):
    """DGJ stack over the unpruned AllTops table."""

    name = "full-top-k-et"
    pairs_table = "AllTops"
    use_pruned_store = False
    include_pruned_checks = False


class FastTopKEtMethod(_EtBase):
    """DGJ stack over LeftTops with pruned topologies merged by score."""

    name = "fast-top-k-et"
    pairs_table = "LeftTops"
    include_pruned_checks = True
