"""Fast-Top (Section 4.3): LeftTops plus online pruned-topology checks.

The generated statement follows the paper's SQL1: the first branch joins
the satisfying entities with LeftTops; one extra UNION branch per pruned
topology re-checks its path condition online with a chain join over the
relationship tables, subtracting the exception pairs via NOT EXISTS.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.methods.base import Method
from repro.core.model import Topology
from repro.core.pathsql import multi_chain_fragments
from repro.core.plan import QueryPlan
from repro.core.query import TopologyQuery


class FastTopMethod(Method):
    name = "fast-top"
    pairs_table = "LeftTops"
    use_pruned_store = True

    def pruned_topologies(self, query: TopologyQuery) -> List[Topology]:
        store = self.system.require_store()
        pair = self.system.store_entity_pair(query)
        return sorted(
            (
                store.topology(tid)
                for tid in store.pruned_tids
                if store.topology(tid).entity_pair == pair
            ),
            key=lambda t: t.tid,
        )

    def pruned_branch_sql(self, query: TopologyQuery, topology: Topology) -> str:
        """The SQL1 lower sub-query for one pruned topology."""
        a1, a2 = self._aliases(query)
        from1, from2, cond1, cond2 = self._endpoint_sql(query)
        es1, es2 = self.system.store_entity_pair(query)
        oriented = self.system.orientation(query)
        end1_alias = a1 if oriented else a2
        end2_alias = a2 if oriented else a1
        chain = multi_chain_fragments(
            topology.class_signatures, es1, es2, end1_alias, end2_alias
        )
        not_exists = (
            f"NOT EXISTS (SELECT 1 FROM ExcpTops X "
            f"WHERE X.E1 = {end1_alias}.ID AND X.E2 = {end2_alias}.ID "
            f"AND X.TID = {topology.tid})"
        )
        from_clause = ", ".join([from1, from2] + list(chain.from_items))
        conditions = [cond1, cond2] + list(chain.conditions) + [not_exists]
        return (
            f"SELECT DISTINCT {topology.tid} AS TID\n"
            f"FROM {from_clause}\n"
            f"WHERE " + " AND ".join(conditions)
        )

    def sql_for(self, query: TopologyQuery) -> str:
        from1, from2, cond1, cond2 = self._endpoint_sql(query)
        join1, join2 = self._pair_join_sql(query, "LT")
        branches = [
            (
                f"SELECT DISTINCT LT.TID\n"
                f"FROM {from1}, {from2}, LeftTops LT\n"
                f"WHERE {cond1} AND {cond2}\n"
                f"  AND {join1} AND {join2}"
            )
        ]
        for topology in self.pruned_topologies(query):
            branches.append(self.pruned_branch_sql(query, topology))
        return "\nUNION\n".join(branches)

    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        result = self.system.engine.execute(self.sql_for(query))
        tids = sorted(row[0] for row in result.rows)
        if query.k is None:
            return tids, None
        store = self.system.require_store()
        scored = {t: store.topology(t).scores[query.ranking] for t in tids}
        return self._rank(scored, query.k)
