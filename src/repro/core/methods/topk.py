"""Full-Top-k and Fast-Top-k (Section 5.1): SQL3-SQL5.

Full-Top-k orders the AllTops join by the TopInfo score and fetches the
first k rows (SQL3/SQL4 over the unpruned store).

Fast-Top-k is *staged* per the paper's optimization: evaluate the
LeftTops sub-query first (SQL4); only when a pruned topology's score
could still make the top k does its online check (SQL5) run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.methods.base import Method
from repro.core.methods.fast_top import FastTopMethod
from repro.core.plan import QueryPlan
from repro.core.query import TopologyQuery
from repro.errors import TopologyError


class FullTopKMethod(Method):
    name = "full-top-k"
    is_topk = True
    estimates_costs = True
    pairs_table = "AllTops"

    def sql_for(self, query: TopologyQuery) -> str:
        if query.k is None:
            raise TopologyError(f"{self.name} requires a top-k query")
        from1, from2, cond1, cond2 = self._endpoint_sql(query)
        join1, join2 = self._pair_join_sql(query, "AT")
        score = self._score_col(query)
        return (
            f"SELECT DISTINCT AT.TID, T.{score} AS SCORE\n"
            f"FROM {from1}, {from2}, {self.pairs_table} AT, TopInfo T\n"
            f"WHERE {cond1} AND {cond2}\n"
            f"  AND {join1} AND {join2} AND T.TID = AT.TID\n"
            f"ORDER BY SCORE DESC, TID DESC\n"
            f"FETCH FIRST {query.k} ROWS ONLY"
        )

    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        result = self.system.engine.execute(self.sql_for(query))
        tids = [row[0] for row in result.rows]
        scores = [row[1] for row in result.rows]
        return tids, scores


class FastTopKMethod(Method):
    name = "fast-top-k"
    is_topk = True
    estimates_costs = True
    pairs_table = "LeftTops"
    use_pruned_store = True

    def __init__(self, system) -> None:
        super().__init__(system)
        self._fast_top = FastTopMethod(system)

    def unpruned_sql(self, query: TopologyQuery) -> str:
        """SQL4: top-k over LeftTops only."""
        from1, from2, cond1, cond2 = self._endpoint_sql(query)
        join1, join2 = self._pair_join_sql(query, "LT")
        score = self._score_col(query)
        return (
            f"SELECT DISTINCT LT.TID, T.{score} AS SCORE\n"
            f"FROM {from1}, {from2}, LeftTops LT, TopInfo T\n"
            f"WHERE {cond1} AND {cond2}\n"
            f"  AND {join1} AND {join2} AND T.TID = LT.TID\n"
            f"ORDER BY SCORE DESC, TID DESC\n"
            f"FETCH FIRST {query.k} ROWS ONLY"
        )

    def pruned_check_sql(self, query: TopologyQuery, topology) -> str:
        """SQL5: does some satisfying pair match this pruned topology's
        path condition and survive the exception table?"""
        branch = self._fast_top.pruned_branch_sql(query, topology)
        return branch + "\nFETCH FIRST 1 ROWS ONLY"

    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        if query.k is None:
            raise TopologyError(f"{self.name} requires a top-k query")
        engine = self.system.engine
        result = engine.execute(self.unpruned_sql(query))
        ranked: List[Tuple[int, float]] = [(row[0], row[1]) for row in result.rows]

        # Stage 2 (SQL5): check each pruned topology whose score could
        # still enter the current top k, best score first.
        pruned = self._fast_top.pruned_topologies(query)
        candidates = sorted(
            pruned,
            key=lambda t: (-t.scores[query.ranking], -t.tid),
        )
        for topology in candidates:
            score = topology.scores[query.ranking]
            if len(ranked) >= query.k:
                kth = ranked[-1]
                if (score, topology.tid) <= (kth[1], kth[0]):
                    continue  # cannot displace the kth result
            check = engine.execute(self.pruned_check_sql(query, topology))
            if check.rows:
                ranked.append((topology.tid, score))
                ranked.sort(key=lambda ts: (-ts[1], -ts[0]))
                ranked = ranked[: query.k]
        tids = [t for t, _ in ranked]
        scores = [s for _, s in ranked]
        return tids, scores
