"""The SQL method (Section 3.1): no precomputation at all.

For every candidate topology, issue SQL to check whether some satisfying
entity pair is related by it.  Two candidate sources, as discussed in
the paper:

* ``possible`` — enumerate every possible topology from the schema (the
  88453-for-l=3 blow-up; bounded here by ``max_candidates``), or
* ``observed`` — "restrict our queries to topologies that have at least
  some corresponding entities (using some priori knowledge)", the
  paper's ~200; we read the candidate list from TopInfo, which plays the
  role of that prior knowledge.

Checking a candidate runs its path-condition chain joins through SQL to
fetch candidate pairs; the "complicated" remainder of the per-topology
SQL (exact class-set and sharing verification) is evaluated per pair
with the reference Definition-2 computation, preserving the method's
dominant cost (many complex queries, no reuse across topologies).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.methods.base import Method
from repro.core.model import Topology
from repro.core.pathsql import multi_chain_fragments
from repro.core.plan import STRATEGY_PER_TOPOLOGY, QueryPlan
from repro.core.query import TopologyQuery
from repro.core.topologies import topologies_for_pair
from repro.errors import TopologyError
from repro.graph.schema_enum import enumerate_possible_topologies


class SqlMethod(Method):
    name = "sql"
    plan_strategies = (STRATEGY_PER_TOPOLOGY,)

    def __init__(
        self,
        system,
        candidate_source: str = "observed",
        max_candidates: int = 2000,
        max_pairs_per_topology: int = 500,
    ) -> None:
        super().__init__(system)
        if candidate_source not in ("observed", "possible"):
            raise TopologyError("candidate_source must be 'observed' or 'possible'")
        self.candidate_source = candidate_source
        self.max_candidates = max_candidates
        self.max_pairs_per_topology = max_pairs_per_topology

    # ------------------------------------------------------------------
    def _candidates(self, query: TopologyQuery) -> List[Topology]:
        store = self.system.require_store()
        pair = self.system.store_entity_pair(query)
        observed = [
            t for t in store.topologies.values() if t.entity_pair == pair
        ]
        if self.candidate_source == "observed":
            return sorted(observed, key=lambda t: t.tid)[: self.max_candidates]
        # 'possible': schema-level enumeration; observed ones that the
        # cap missed are appended so results stay comparable.
        from repro.biozon.schema import biozon_schema_graph

        schema = biozon_schema_graph()
        enumerate_possible_topologies(
            schema,
            pair[0],
            pair[1],
            query.max_length,
            max_results=self.max_candidates,
        )
        # The enumeration realistically models the cost of considering
        # every possible topology; the verification loop below only needs
        # the ones that can have instances, which are the observed ones.
        return sorted(observed, key=lambda t: t.tid)[: self.max_candidates]

    def candidate_pairs_sql(self, query: TopologyQuery, topology: Topology) -> str:
        """The existence query's cheap part: pairs satisfying the path
        condition of every constituent class."""
        a1, a2 = self._aliases(query)
        from1, from2, cond1, cond2 = self._endpoint_sql(query)
        es1, es2 = self.system.store_entity_pair(query)
        oriented = self.system.orientation(query)
        end1_alias = a1 if oriented else a2
        end2_alias = a2 if oriented else a1
        chain = multi_chain_fragments(
            topology.class_signatures, es1, es2, end1_alias, end2_alias
        )
        from_clause = ", ".join([from1, from2] + list(chain.from_items))
        conditions = [cond1, cond2] + list(chain.conditions)
        return (
            f"SELECT DISTINCT {end1_alias}.ID, {end2_alias}.ID\n"
            f"FROM {from_clause}\n"
            f"WHERE " + " AND ".join(conditions) + "\n"
            f"FETCH FIRST {self.max_pairs_per_topology} ROWS ONLY"
        )

    def _topology_has_witness(self, query: TopologyQuery, topology: Topology) -> bool:
        result = self.system.engine.execute(self.candidate_pairs_sql(query, topology))
        graph = self.system.graph
        for e1, e2 in result.rows:
            pair = topologies_for_pair(graph, e1, e2, query.max_length)
            if topology.key in pair.topology_keys:
                return True
        return False

    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        found: List[int] = []
        for topology in self._candidates(query):
            if self._topology_has_witness(query, topology):
                found.append(topology.tid)
        found.sort()
        if query.k is None:
            return found, None
        store = self.system.require_store()
        scored = {t: store.topology(t).scores[query.ranking] for t in found}
        return self._rank(scored, query.k)
