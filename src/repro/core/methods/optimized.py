"""Cost-based method choice (Section 5.4): the ``*-Opt`` methods.

Fast-Top-k-Opt / Full-Top-k-Opt estimate the cost of (a) the regular
staged top-k plan, via the System-R enumerator's cost for the SQL4 join
block plus the final sort, and (b) the DGJ stack, via the paper's
Theorem-1 dynamic program over (np_i, nc_i, ec_i) — then run whichever
is cheaper.  IDGJ and HDGJ stack costs are both evaluated, so the
chosen ET flavor can differ per query (the paper's "best and worst
plans" cases in Table 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.methods.base import Method
from repro.core.methods.et import FastTopKEtMethod, FullTopKEtMethod
from repro.core.methods.topk import FastTopKMethod, FullTopKMethod
from repro.core.query import TopologyQuery
from repro.errors import TopologyError
from repro.relational.expressions import ColumnRef, Comparison
from repro.relational.optimizer import cost as C
from repro.relational.optimizer.dgj_cost import (
    DgjLevel,
    hdgj_stack_cost,
    idgj_stack_cost,
)
from repro.relational.optimizer.logical import build_block


class _OptBase(Method):
    is_topk = True
    pairs_table = "LeftTops"
    use_pruned_store = True

    def __init__(self, system) -> None:
        super().__init__(system)
        if self.use_pruned_store:
            self._regular = FastTopKMethod(system)
            self._et_idgj = FastTopKEtMethod(system, flavor="idgj")
            self._et_hdgj = FastTopKEtMethod(system, flavor="hdgj")
        else:
            self._regular = FullTopKMethod(system)
            self._et_idgj = FullTopKEtMethod(system, flavor="idgj")
            self._et_hdgj = FullTopKEtMethod(system, flavor="hdgj")

    # ------------------------------------------------------------------
    # Cost estimation
    # ------------------------------------------------------------------
    def _stack_parameters(
        self, query: TopologyQuery
    ) -> Tuple[List[DgjLevel], List[float]]:
        store = self.system.require_store()
        stats = self.system.stats
        pair = self.system.store_entity_pair(query)
        topologies = [
            t
            for t in store.topologies.values()
            if t.entity_pair == pair
            and not (self.use_pruned_store and t.tid in store.pruned_tids)
        ]
        # Groups arrive in score order; Card_i = the topology's pair
        # count (one pairs-table row per related pair).
        topologies.sort(key=lambda t: (-t.scores[query.ranking], -t.tid))
        cards = [float(t.frequency) for t in topologies]

        levels: List[DgjLevel] = []
        for entity, constraint in (
            (query.entity1, query.constraint1),
            (query.entity2, query.constraint2),
        ):
            n = float(stats.row_count(entity))
            rho = stats.predicate_selectivity(
                constraint.to_expression("x"), {"x": entity}
            )
            levels.append(
                DgjLevel(
                    relation_rows=n,
                    probe_cost=C.INDEX_PROBE_COST,
                    local_selectivity=max(1e-9, min(1.0, rho)),
                    join_selectivity=1.0 / max(n, 1.0),
                )
            )
        return levels, cards

    def estimate_et_costs(self, query: TopologyQuery) -> Dict[str, float]:
        levels, cards = self._stack_parameters(query)
        k = query.k or 10
        return {
            "idgj": idgj_stack_cost(levels, cards, k),
            "hdgj": hdgj_stack_cost(levels, cards, k, scan_row_cost=C.ROW_COST),
        }

    def estimate_regular_cost(self, query: TopologyQuery) -> float:
        """Cost of the SQL4 block under the System-R enumerator, plus
        the final sort that regular plans cannot avoid (Section 5.2)."""
        oriented = self.system.orientation(query)
        col1 = "e1" if oriented else "e2"
        col2 = "e2" if oriented else "e1"
        relations = [
            (query.entity1, "q1"),
            (query.entity2, "q2"),
            (self.pairs_table, "lt"),
            ("TopInfo", "t"),
        ]
        conjuncts = [
            query.constraint1.to_expression("q1"),
            query.constraint2.to_expression("q2"),
            Comparison("=", ColumnRef("q1", "id"), ColumnRef("lt", col1)),
            Comparison("=", ColumnRef("q2", "id"), ColumnRef("lt", col2)),
            Comparison("=", ColumnRef("t", "tid"), ColumnRef("lt", "tid")),
        ]
        block = build_block(relations, conjuncts)
        optimizer = self.system.engine.planner.optimizer
        best = optimizer.optimize(block)
        return best.cost + C.sort_cost(best.est_rows)

    # ------------------------------------------------------------------
    def _execute(
        self, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]], Optional[str]]:
        if query.k is None:
            raise TopologyError(f"{self.name} requires a top-k query")
        et_costs = self.estimate_et_costs(query)
        regular_cost = self.estimate_regular_cost(query)
        best_flavor = min(et_costs, key=et_costs.get)
        if et_costs[best_flavor] < regular_cost:
            delegate = self._et_idgj if best_flavor == "idgj" else self._et_hdgj
            choice = (
                f"et-{best_flavor} (et={et_costs[best_flavor]:.0f}, "
                f"regular={regular_cost:.0f})"
            )
        else:
            delegate = self._regular
            choice = (
                f"regular (et={et_costs[best_flavor]:.0f}, "
                f"regular={regular_cost:.0f})"
            )
        tids, scores, _ = delegate._execute(query)
        return tids, scores, choice


class FastTopKOptMethod(_OptBase):
    name = "fast-top-k-opt"
    pairs_table = "LeftTops"
    use_pruned_store = True


class FullTopKOptMethod(_OptBase):
    name = "full-top-k-opt"
    pairs_table = "AllTops"
    use_pruned_store = False
