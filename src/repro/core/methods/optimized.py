"""Cost-based method choice (Section 5.4): the ``*-Opt`` methods.

Fast-Top-k-Opt / Full-Top-k-Opt are the cost-based methods: their
:meth:`~repro.core.methods.base.Method.plan` asks the engine's
:class:`~repro.core.plan.Planner` to price (a) the regular staged top-k
plan, via the System-R enumerator's cost for the SQL4 join block plus
the final sort, and (b) both DGJ stacks, via the paper's Theorem-1
dynamic program over (np_i, nc_i, ec_i) — then :meth:`execute` runs the
delegate for whichever strategy the plan chose.  IDGJ and HDGJ stack
costs are both evaluated, so the chosen ET flavor can differ per query
(the paper's "best and worst plans" cases in Table 2).

The estimation itself lives in :mod:`repro.core.plan`; plans are cached
per query class, so repeated-shape traffic skips the enumeration and
the dynamic programs entirely, and the
:class:`~repro.core.plan.CostCalibrator`'s learned per-strategy factors
are applied before the comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.methods.base import Method
from repro.core.methods.et import FastTopKEtMethod, FullTopKEtMethod
from repro.core.methods.topk import FastTopKMethod, FullTopKMethod
from repro.core.plan import (
    STRATEGY_ET_HDGJ,
    STRATEGY_ET_IDGJ,
    STRATEGY_REGULAR,
    QueryPlan,
)
from repro.core.query import TopologyQuery
from repro.errors import TopologyError


class _OptBase(Method):
    is_topk = True
    cost_based = True
    estimates_costs = True
    plan_strategies = (STRATEGY_REGULAR, STRATEGY_ET_IDGJ, STRATEGY_ET_HDGJ)
    pairs_table = "LeftTops"
    use_pruned_store = True

    def __init__(self, system) -> None:
        super().__init__(system)
        if self.use_pruned_store:
            self._delegates = {
                STRATEGY_REGULAR: FastTopKMethod(system),
                STRATEGY_ET_IDGJ: FastTopKEtMethod(system, flavor="idgj"),
                STRATEGY_ET_HDGJ: FastTopKEtMethod(system, flavor="hdgj"),
            }
        else:
            self._delegates = {
                STRATEGY_REGULAR: FullTopKMethod(system),
                STRATEGY_ET_IDGJ: FullTopKEtMethod(system, flavor="idgj"),
                STRATEGY_ET_HDGJ: FullTopKEtMethod(system, flavor="hdgj"),
            }

    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        if query.k is None:
            raise TopologyError(f"{self.name} requires a top-k query")
        delegate = self._delegates[plan.strategy]
        return delegate.execute(plan, query)


class FastTopKOptMethod(_OptBase):
    name = "fast-top-k-opt"
    pairs_table = "LeftTops"
    use_pruned_store = True


class FullTopKOptMethod(_OptBase):
    name = "full-top-k-opt"
    pairs_table = "AllTops"
    use_pruned_store = False
