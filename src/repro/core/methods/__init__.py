"""The nine query-processing methods evaluated in Section 6."""

from typing import Dict, Type

from repro.core.methods.base import Method, MethodResult
from repro.core.methods.et import FastTopKEtMethod, FullTopKEtMethod
from repro.core.methods.fast_top import FastTopMethod
from repro.core.methods.full_top import FullTopMethod
from repro.core.methods.optimized import FastTopKOptMethod, FullTopKOptMethod
from repro.core.methods.sql_method import SqlMethod
from repro.core.methods.topk import FastTopKMethod, FullTopKMethod
from repro.errors import TopologyError

METHOD_CLASSES: Dict[str, Type[Method]] = {
    "sql": SqlMethod,
    "full-top": FullTopMethod,
    "fast-top": FastTopMethod,
    "full-top-k": FullTopKMethod,
    "fast-top-k": FastTopKMethod,
    "full-top-k-et": FullTopKEtMethod,
    "fast-top-k-et": FastTopKEtMethod,
    "full-top-k-opt": FullTopKOptMethod,
    "fast-top-k-opt": FastTopKOptMethod,
}

ALL_METHOD_NAMES = tuple(METHOD_CLASSES)


def create_method(name: str, system) -> Method:
    """Instantiate a method by its paper name."""
    try:
        cls = METHOD_CLASSES[name.lower()]
    except KeyError:
        raise TopologyError(
            f"unknown method {name!r}; known: {sorted(METHOD_CLASSES)}"
        ) from None
    return cls(system)


__all__ = [
    "ALL_METHOD_NAMES",
    "METHOD_CLASSES",
    "Method",
    "MethodResult",
    "FastTopKEtMethod",
    "FastTopKMethod",
    "FastTopKOptMethod",
    "FastTopMethod",
    "FullTopKEtMethod",
    "FullTopKMethod",
    "FullTopKOptMethod",
    "FullTopMethod",
    "SqlMethod",
    "create_method",
]
