"""Common scaffolding for the nine query methods.

Every method runs in two phases: :meth:`Method.plan` obtains a
:class:`~repro.core.plan.QueryPlan` (through the engine's plan cache, so
repeated-shape traffic skips the optimizer) and :meth:`Method.execute`
carries it out.  :meth:`Method.run` wires the two together with the
timing/counter rig and feeds the executed plan's (estimated cost,
observed work) pair back to the engine's cost calibrator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plan import STRATEGY_REGULAR, QueryPlan
from repro.core.query import TopologyQuery
from repro.core.ranking import score_column
from repro.obs import span
from repro.relational.sql.tokens import sql_quote


@dataclass
class MethodResult:
    """One query evaluation's outcome.

    ``tids`` are topology ids — ranked (score descending, tid descending
    on ties) for top-k methods, sorted ascending for exhaustive methods.
    ``work`` captures the executor counters consumed (rows scanned,
    index probes, ...), a noise-free complement to wall-clock time.
    ``plan`` is the structured :class:`~repro.core.plan.QueryPlan` the
    method executed; ``planning_seconds`` is the share of
    ``elapsed_seconds`` spent obtaining it (near zero on a plan-cache
    hit).  ``plan_choice`` derives the old free-text label from the
    plan, kept for backward compatibility.  ``generation`` is stamped by
    :class:`~repro.service.server.TopologyServer` with the store
    generation that produced the answer (``None`` when the result came
    straight from the engine) — under hot rebuilds it tells which
    snapshot of the data a cached or in-flight answer reflects.
    """

    method: str
    query: TopologyQuery
    tids: List[int]
    scores: Optional[List[float]]
    elapsed_seconds: float
    work: Dict[str, int] = field(default_factory=dict)
    plan: Optional[QueryPlan] = None
    planning_seconds: float = 0.0
    generation: Optional[int] = None

    @property
    def plan_choice(self) -> Optional[str]:
        """Short human-readable plan label (derived from ``plan``)."""
        return self.plan.choice if self.plan is not None else None

    @property
    def ranked(self) -> List[Tuple[int, float]]:
        if self.scores is None:
            raise ValueError(f"method {self.method} does not produce scores")
        return list(zip(self.tids, self.scores))


class Method:
    """Base class: holds the system handle and the timing/counter rig.

    Planning metadata consumed by :class:`~repro.core.plan.Planner`:

    ``plan_strategies``
        The strategy menu (one entry for fixed-strategy methods, the
        regular/ET triple for the cost-based ``*-Opt`` methods).
    ``cost_based``
        True when :meth:`plan` must choose among the strategies by
        calibrated cost (the ``*-Opt`` methods).
    ``estimates_costs``
        True when the single fixed strategy is priced anyway, so every
        execution feeds the calibrator (all top-k methods).
    ``pairs_table`` / ``use_pruned_store``
        Which materialized pairs table the plan joins, and whether it is
        the pruned one (LeftTops + online SQL5 checks).
    """

    name = "abstract"
    is_topk = False
    cost_based = False
    estimates_costs = False
    plan_strategies: Tuple[str, ...] = (STRATEGY_REGULAR,)
    pairs_table: Optional[str] = None
    use_pruned_store = False

    def __init__(self, system) -> None:
        self.system = system

    # -- Template ----------------------------------------------------------
    def run(self, query: TopologyQuery) -> MethodResult:
        self.system.validate_query(query)
        t0 = time.perf_counter()
        with span("engine.plan", method=self.name):
            plan = self.plan(query)
        planning_seconds = time.perf_counter() - t0
        stats = self.system.database.stats
        before = stats.snapshot()
        t1 = time.perf_counter()
        with span("engine.execute", method=self.name, strategy=plan.choice):
            tids, scores = self.execute(plan, query)
        execute_seconds = time.perf_counter() - t1
        after = stats.snapshot()
        work = {k: after[k] - before[k] for k in after}
        self.system.record_plan_observation(plan, work)
        return MethodResult(
            method=self.name,
            query=query,
            tids=tids,
            scores=scores,
            elapsed_seconds=planning_seconds + execute_seconds,
            work=work,
            plan=plan,
            planning_seconds=planning_seconds,
        )

    def plan(self, query: TopologyQuery) -> QueryPlan:
        """The plan this method will execute (engine plan cache aware)."""
        return self.system.plan_query(query, self)

    def execute(
        self, plan: QueryPlan, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]]]:
        """Carry out a plan produced by :meth:`plan`."""
        raise NotImplementedError

    # -- Shared helpers ------------------------------------------------------
    def _aliases(self, query: TopologyQuery) -> Tuple[str, str]:
        """Table aliases for the two constrained entity tables."""
        return ("q1", "q2")

    def _endpoint_sql(self, query: TopologyQuery) -> Tuple[str, str, str, str]:
        """FROM items and WHERE fragments for the two constrained
        entity tables."""
        a1, a2 = self._aliases(query)
        from1 = f"{query.entity1} {a1}"
        from2 = f"{query.entity2} {a2}"
        cond1 = query.constraint1.to_sql(a1)
        cond2 = query.constraint2.to_sql(a2)
        return from1, from2, cond1, cond2

    def _pair_join_sql(self, query: TopologyQuery, pairs_alias: str) -> Tuple[str, str]:
        """Join conditions tying the pairs table (AllTops/LeftTops) to the
        two entity aliases, respecting the build orientation."""
        a1, a2 = self._aliases(query)
        if self.system.orientation(query):
            return (f"{a1}.ID = {pairs_alias}.E1", f"{a2}.ID = {pairs_alias}.E2")
        return (f"{a1}.ID = {pairs_alias}.E2", f"{a2}.ID = {pairs_alias}.E1")

    def _score_col(self, query: TopologyQuery) -> str:
        return score_column(query.ranking)

    def _entity_pair_filter(self, query: TopologyQuery, topinfo_alias: str) -> str:
        es1, es2 = self.system.store_entity_pair(query)
        return (
            f"{topinfo_alias}.ES1 = {sql_quote(es1)} "
            f"AND {topinfo_alias}.ES2 = {sql_quote(es2)}"
        )

    def _rank(self, scored: Dict[int, float], k: Optional[int]) -> Tuple[List[int], List[float]]:
        """Order (score desc, tid desc) and cut at k."""
        ordered = sorted(scored.items(), key=lambda kv: (-kv[1], -kv[0]))
        if k is not None:
            ordered = ordered[:k]
        return [t for t, _ in ordered], [s for _, s in ordered]
