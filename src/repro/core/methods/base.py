"""Common scaffolding for the nine query methods."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.query import TopologyQuery
from repro.core.ranking import score_column


@dataclass
class MethodResult:
    """One query evaluation's outcome.

    ``tids`` are topology ids — ranked (score descending, tid descending
    on ties) for top-k methods, sorted ascending for exhaustive methods.
    ``work`` captures the executor counters consumed (rows scanned,
    index probes, ...), a noise-free complement to wall-clock time.
    """

    method: str
    query: TopologyQuery
    tids: List[int]
    scores: Optional[List[float]]
    elapsed_seconds: float
    work: Dict[str, int] = field(default_factory=dict)
    plan_choice: Optional[str] = None

    @property
    def ranked(self) -> List[Tuple[int, float]]:
        if self.scores is None:
            raise ValueError(f"method {self.method} does not produce scores")
        return list(zip(self.tids, self.scores))


class Method:
    """Base class: holds the system handle and the timing/counter rig."""

    name = "abstract"
    is_topk = False

    def __init__(self, system) -> None:
        self.system = system

    # -- Template ----------------------------------------------------------
    def run(self, query: TopologyQuery) -> MethodResult:
        self.system.validate_query(query)
        stats = self.system.database.stats
        before = stats.snapshot()
        start = time.perf_counter()
        tids, scores, plan_choice = self._execute(query)
        elapsed = time.perf_counter() - start
        after = stats.snapshot()
        work = {k: after[k] - before[k] for k in after}
        return MethodResult(
            method=self.name,
            query=query,
            tids=tids,
            scores=scores,
            elapsed_seconds=elapsed,
            work=work,
            plan_choice=plan_choice,
        )

    def _execute(
        self, query: TopologyQuery
    ) -> Tuple[List[int], Optional[List[float]], Optional[str]]:
        raise NotImplementedError

    # -- Shared helpers ------------------------------------------------------
    def _aliases(self, query: TopologyQuery) -> Tuple[str, str]:
        """Table aliases for the two constrained entity tables."""
        return ("q1", "q2")

    def _endpoint_sql(self, query: TopologyQuery) -> Tuple[str, str, str, str]:
        """FROM items and WHERE fragments for the two constrained
        entity tables."""
        a1, a2 = self._aliases(query)
        from1 = f"{query.entity1} {a1}"
        from2 = f"{query.entity2} {a2}"
        cond1 = query.constraint1.to_sql(a1)
        cond2 = query.constraint2.to_sql(a2)
        return from1, from2, cond1, cond2

    def _pair_join_sql(self, query: TopologyQuery, pairs_alias: str) -> Tuple[str, str]:
        """Join conditions tying the pairs table (AllTops/LeftTops) to the
        two entity aliases, respecting the build orientation."""
        a1, a2 = self._aliases(query)
        if self.system.orientation(query):
            return (f"{a1}.ID = {pairs_alias}.E1", f"{a2}.ID = {pairs_alias}.E2")
        return (f"{a1}.ID = {pairs_alias}.E2", f"{a2}.ID = {pairs_alias}.E1")

    def _score_col(self, query: TopologyQuery) -> str:
        return score_column(query.ranking)

    def _entity_pair_filter(self, query: TopologyQuery, topinfo_alias: str) -> str:
        es1, es2 = self.system.store_entity_pair(query)
        return (
            f"{topinfo_alias}.ES1 = '{es1}' AND {topinfo_alias}.ES2 = '{es2}'"
        )

    def _rank(self, scored: Dict[int, float], k: Optional[int]) -> Tuple[List[int], List[float]]:
        """Order (score desc, tid desc) and cut at k."""
        ordered = sorted(scored.items(), key=lambda kv: (-kv[1], -kv[0]))
        if k is not None:
            ordered = ordered[:k]
        return [t for t, _ in ordered], [s for _, s in ordered]
