"""Core data model: topologies and their identities.

A *topology* (Definition 2/3) is an isomorphism class of labeled graphs
obtained by unioning one representative path per equivalence class
between a pair of entities.  Internally a topology is identified by the
canonical form of such a graph; the :class:`Topology` record also keeps
the metadata the paper's TopInfo table stores (structure description,
frequency, scores) plus the canonical positions of the two endpoints
(needed to anchor instance retrieval).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.graph.canonical import (
    CanonicalForm,
    canonical_key,
    graph_from_canonical,
    parse_canonical_key,
)
from repro.graph.labeled_graph import LabeledGraph

# A path equivalence class is identified by its direction-normalized
# label signature (node type, edge type, node type, ...).
ClassSignature = Tuple[str, ...]


@dataclass
class Topology:
    """One topology with its TopInfo metadata.

    tid
        Integer topology id (the TID of the paper's tables).
    key
        Canonical string form (the TopInfo ``details`` column).
    entity_pair
        ``(es1, es2)`` entity-set names the topology relates.
    endpoint_indices
        Canonical node indices of the two endpoints (es1 endpoint first).
    class_signatures
        Path-equivalence classes whose union realizes the topology.
    frequency
        Number of entity pairs related by this topology (Section 4.2.1).
    """

    tid: int
    key: str
    entity_pair: Tuple[str, str]
    endpoint_indices: Tuple[int, int]
    class_signatures: Tuple[ClassSignature, ...]
    frequency: int = 0
    scores: Dict[str, float] = field(default_factory=dict)

    @property
    def form(self) -> CanonicalForm:
        return parse_canonical_key(self.key)

    @property
    def num_classes(self) -> int:
        return len(self.class_signatures)

    @property
    def num_nodes(self) -> int:
        return len(self.form[0])

    @property
    def num_edges(self) -> int:
        return len(self.form[1])

    @property
    def is_single_path(self) -> bool:
        """Is the structure a simple path?  (The frequent topologies the
        paper prunes are overwhelmingly of this shape, Figure 12.)"""
        if self.num_classes != 1:
            return False
        node_types, edges = self.form
        degree = [0] * len(node_types)
        for i, j, _ in edges:
            degree[i] += 1
            degree[j] += 1
        return (
            len(edges) == len(node_types) - 1
            and sorted(degree) == [1, 1] + [2] * (len(node_types) - 2)
        )

    def graph(self) -> LabeledGraph:
        """A representative graph (node ids = canonical indices)."""
        return graph_from_canonical(self.form)

    def display(self) -> str:
        """Human-readable structure, e.g. for example output:
        ``Protein(0) -encodes- DNA(1); ...``"""
        node_types, edges = self.form
        parts = [
            f"{node_types[i]}({i}) -{etype}- {node_types[j]}({j})"
            for i, j, etype in edges
        ]
        return "; ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(tid={self.tid}, classes={self.num_classes}, {self.key})"


def signature_display(signature: ClassSignature) -> str:
    """Render a class signature like ``Protein-uni_encodes-Unigene-...``."""
    return "-".join(signature)


@dataclass(frozen=True)
class PairTopologies:
    """Offline computation output for one entity pair: its equivalence
    classes and the topologies they give rise to."""

    e1: object
    e2: object
    class_signatures: FrozenSet[ClassSignature]
    topology_keys: Tuple[str, ...]
    truncated: bool = False
