"""Topology queries: Section 2.2's 2-queries.

A query is ``{(t1, con1), (t2, con2)}`` — two entity types with
constraints.  Constraints must render both as engine
:class:`~repro.relational.expressions.Expression` trees (for directly
constructed plans) and as SQL text fragments (for the methods that issue
SQL, matching the paper's SQL1–SQL5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    Expression,
    Literal,
)
from repro.relational.sql.tokens import sql_quote


class Constraint:
    """Base class for entity constraints."""

    def to_expression(self, alias: str) -> Expression:
        raise NotImplementedError

    def to_sql(self, alias: str) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class KeywordConstraint(Constraint):
    """Keyword search on a text attribute — the paper's
    ``desc.ct('enzyme')`` clause."""

    column: str
    keyword: str

    def to_expression(self, alias: str) -> Expression:
        return Contains(ColumnRef(alias, self.column), Literal(self.keyword))

    def to_sql(self, alias: str) -> str:
        return f"CONTAINS({alias}.{self.column}, {sql_quote(self.keyword)})"


@dataclass(frozen=True)
class AttributeConstraint(Constraint):
    """Structured predicate, e.g. ``type = 'mRNA'``."""

    column: str
    value: Any
    op: str = "="

    def to_expression(self, alias: str) -> Expression:
        return Comparison(self.op, ColumnRef(alias, self.column), Literal(self.value))

    def to_sql(self, alias: str) -> str:
        return f"{alias}.{self.column} {self.op} {sql_quote(self.value)}"


@dataclass(frozen=True)
class ConjunctionConstraint(Constraint):
    """AND of several constraints on the same entity."""

    parts: Tuple[Constraint, ...]

    def to_expression(self, alias: str) -> Expression:
        return And([p.to_expression(alias) for p in self.parts])

    def to_sql(self, alias: str) -> str:
        return " AND ".join(f"({p.to_sql(alias)})" for p in self.parts)


@dataclass(frozen=True)
class NoConstraint(Constraint):
    """Always-true constraint (select every entity of the type)."""

    def to_expression(self, alias: str) -> Expression:
        return Literal(True)

    def to_sql(self, alias: str) -> str:
        return "1 = 1"


@dataclass(frozen=True)
class TopologyQuery:
    """A 2-query plus evaluation parameters.

    entity1 / entity2
        Entity-set (table) names, e.g. ``Protein`` and ``DNA``.
    constraint1 / constraint2
        The per-entity constraints.
    max_length
        The ``l`` of l-topologies (the paper uses 3 for most
        experiments, 4 in Section 6.2.3).
    k
        Top-k cut-off (None = return all topology results).
    ranking
        Name of the ranking scheme for top-k queries
        (``freq`` / ``rare`` / ``domain``, Section 6.1).
    """

    entity1: str
    entity2: str
    constraint1: Constraint
    constraint2: Constraint
    max_length: int = 3
    k: Optional[int] = None
    ranking: str = "freq"

    def __post_init__(self) -> None:
        if self.max_length < 1:
            raise TopologyError("max_length must be >= 1")
        if self.k is not None and self.k < 1:
            raise TopologyError("k must be >= 1 when given")

    @property
    def entity_pair(self) -> Tuple[str, str]:
        return (self.entity1, self.entity2)

    def describe(self) -> str:
        return (
            f"{{({self.entity1}, {self.constraint1.to_sql('t1')}), "
            f"({self.entity2}, {self.constraint2.to_sql('t2')})}} "
            f"l={self.max_length}"
            + (f" top-{self.k} by {self.ranking}" if self.k is not None else "")
        )
