"""Weak relationships (Section 6.2.3, Appendix B, Table 4).

A *weak relationship* is a path class that most likely connects remotely
related or unrelated entities — e.g. ``P-D-P-U-D``, where the first
protein and the final EST sequence have no biological connection.  At
l ≥ 4 such classes both dilute meaningful topologies (Figure 17) and
blow up computation (hundreds of millions of instances in Biozon).

The paper's proposed solution is domain-knowledge pruning: Table 4
lists the Biozon sub-path patterns whose repetition creates weak
relationships.  :class:`WeakPathRules` encodes that table; a path class
is *weak* when its node-type sequence contains one of the flagged
patterns as a contiguous run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.model import ClassSignature, Topology

# Table 4 of the paper, written with full entity-type names
# (P=Protein, D=DNA, U=Unigene, F=Family, W=Pathway).
BIOZON_WEAK_PATTERNS: Tuple[Tuple[str, ...], ...] = (
    ("DNA", "Unigene", "Protein"),                       # DUP
    ("Protein", "Family", "Protein"),                    # PFP
    ("Protein", "Unigene", "Protein"),                   # PUP
    ("Protein", "Family", "Protein", "DNA"),             # PFPD
    ("Family", "Pathway", "Family"),                     # FWF
    ("DNA", "Unigene", "Protein", "Unigene"),            # DUPU
    ("Protein", "Unigene", "Protein", "Unigene"),        # PUPU
    ("Protein", "DNA", "Protein"),                       # PDP
    ("Family", "Pathway", "Family", "Protein"),          # FWFP
)

# The patterns only flag *weak* usage when the path is long enough to be
# a transitive chain; the paper keeps l=3 results (which contain PDP,
# PUP etc. as full paths) and worries at l >= 4.
DEFAULT_MIN_PATH_LENGTH = 4


@dataclass(frozen=True)
class WeakPathRules:
    """A set of node-type patterns that mark a path class as weak."""

    patterns: Tuple[Tuple[str, ...], ...] = BIOZON_WEAK_PATTERNS
    min_path_length: int = DEFAULT_MIN_PATH_LENGTH

    def is_weak_sequence(self, node_types: Sequence[str]) -> bool:
        """Does the node-type sequence (of a path) contain a weak
        pattern, in either direction?"""
        if (len(node_types) - 1) < self.min_path_length:
            return False
        seq = tuple(node_types)
        rev = seq[::-1]
        for pattern in self.patterns:
            if _contains_run(seq, pattern) or _contains_run(rev, pattern):
                return True
        return False

    def is_weak_class(self, signature: ClassSignature) -> bool:
        """Weakness of a path-equivalence class (node types are the even
        positions of the signature)."""
        return self.is_weak_sequence(signature[0::2])

    def weak_classes(
        self, signatures: Iterable[ClassSignature]
    ) -> List[ClassSignature]:
        return [s for s in signatures if self.is_weak_class(s)]

    def topology_weak_fraction(self, topology: Topology) -> float:
        """Fraction of a topology's constituent classes that are weak —
        the quantity the Domain ranking penalizes."""
        sigs = topology.class_signatures
        if not sigs:
            return 0.0
        weak = sum(1 for s in sigs if self.is_weak_class(s))
        return weak / len(sigs)

    def is_weak_topology(self, topology: Topology) -> bool:
        """A topology is weak when *all* of its classes are weak (it
        carries no strong relationship at all)."""
        sigs = topology.class_signatures
        return bool(sigs) and all(self.is_weak_class(s) for s in sigs)

    def prune_weak_topologies(
        self, topologies: Iterable[Topology]
    ) -> Tuple[List[Topology], List[Topology]]:
        """Split into (kept, pruned-as-weak) — the paper's proposed
        domain-knowledge mitigation."""
        kept: List[Topology] = []
        pruned: List[Topology] = []
        for topology in topologies:
            (pruned if self.is_weak_topology(topology) else kept).append(topology)
        return kept, pruned


def _contains_run(sequence: Tuple[str, ...], pattern: Tuple[str, ...]) -> bool:
    n, m = len(sequence), len(pattern)
    if m > n:
        return False
    for start in range(n - m + 1):
        if sequence[start : start + m] == pattern:
            return True
    return False
