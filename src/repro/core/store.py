"""The topology store: TopInfo metadata plus the derived tables.

Mirrors the paper's storage design (Figures 9 and 13):

* ``TopInfo(TID, ES1, ES2, DETAILS, FREQ, NCLASSES, SCORE_*)`` — one row
  per distinct topology, with one score column per ranking scheme and a
  sorted index per score column (the ET plans scan these in score
  order);
* ``AllTops(E1, E2, TID)`` — every entity pair and the topologies
  relating it (Full-Top's table);
* ``LeftTops(E1, E2, TID)`` — AllTops minus pruned topologies;
* ``ExcpTops(E1, E2, TID)`` — pairs satisfying a pruned topology's path
  condition that are *not* related by it (the exception table).

The store is populated by :mod:`repro.core.alltops`, pruned by
:mod:`repro.core.pruning`, and materialized into the host database so
the query methods can reach it through SQL.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.model import ClassSignature, Topology
from repro.core.ranking import RANKING_SCHEMES, compute_scores, score_column
from repro.core.weak import WeakPathRules
from repro.errors import TopologyError
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType

PairKey = Tuple[object, object]


class TopologyStore:
    """In-memory topology catalog + derived table rows."""

    def __init__(self, weak_rules: Optional[WeakPathRules] = None) -> None:
        self.topologies: Dict[int, Topology] = {}
        # Topology identity is (canonical structure, entity-set pair):
        # Section 4.2.1 defines frequency per (es1, es2, T), and the same
        # structure can relate pairs from different entity sets (pure
        # graph isomorphism does not pin the endpoints' types' roles).
        self._tid_by_key: Dict[Tuple[str, Tuple[str, str]], int] = {}
        self.alltops_rows: List[Tuple[object, object, int]] = []
        self.pair_classes: Dict[PairKey, FrozenSet[ClassSignature]] = {}
        self.pair_tids: Dict[PairKey, Set[int]] = {}
        self.pair_entity_types: Dict[PairKey, Tuple[str, str]] = {}
        self.truncated_pairs: int = 0
        self.weak_rules = weak_rules or WeakPathRules()
        # Filled by pruning:
        self.pruned_tids: Set[int] = set()
        self.lefttops_rows: List[Tuple[object, object, int]] = []
        self.excptops_rows: List[Tuple[object, object, int]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # Population (offline phase)
    # ------------------------------------------------------------------
    def intern(
        self,
        key: str,
        entity_pair: Tuple[str, str],
        endpoint_indices: Tuple[int, int],
        class_signatures: FrozenSet[ClassSignature],
    ) -> int:
        """Get-or-create the TID for a (structure, entity pair)."""
        tid = self._tid_by_key.get((key, entity_pair))
        if tid is not None:
            return tid
        tid = len(self.topologies) + 1
        self._tid_by_key[(key, entity_pair)] = tid
        self.topologies[tid] = Topology(
            tid=tid,
            key=key,
            entity_pair=entity_pair,
            endpoint_indices=endpoint_indices,
            class_signatures=tuple(sorted(class_signatures)),
        )
        return tid

    def record_pair(
        self,
        e1: object,
        e2: object,
        entity_pair: Tuple[str, str],
        class_signatures: FrozenSet[ClassSignature],
        topology_endpoints: Dict[str, Tuple[int, int]],
        truncated: bool,
    ) -> None:
        """Record one entity pair's offline computation output."""
        if self._finalized:
            raise TopologyError("store already finalized")
        pair: PairKey = (e1, e2)
        if pair in self.pair_classes:
            raise TopologyError(f"pair {pair!r} recorded twice")
        self.pair_classes[pair] = class_signatures
        self.pair_entity_types[pair] = entity_pair
        tids: Set[int] = set()
        for key, endpoints in topology_endpoints.items():
            tid = self.intern(key, entity_pair, endpoints, class_signatures)
            tids.add(tid)
            self.alltops_rows.append((e1, e2, tid))
        self.pair_tids[pair] = tids
        if truncated:
            self.truncated_pairs += 1

    def finalize(self) -> None:
        """Compute frequencies and ranking scores (Section 4.2.1 / 6.1)."""
        counts: Dict[int, int] = {}
        for _, _, tid in self.alltops_rows:
            counts[tid] = counts.get(tid, 0) + 1
        for tid, topology in self.topologies.items():
            topology.frequency = counts.get(tid, 0)
        compute_scores(self.topologies.values(), self.weak_rules)
        self._finalized = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tid_of(
        self, key: str, entity_pair: Optional[Tuple[str, str]] = None
    ) -> Optional[int]:
        """TID for a canonical key.  Without ``entity_pair`` the key must
        be unambiguous across entity pairs."""
        if entity_pair is not None:
            return self._tid_by_key.get((key, entity_pair))
        hits = [tid for (k, _), tid in self._tid_by_key.items() if k == key]
        if not hits:
            return None
        if len(hits) > 1:
            raise TopologyError(
                f"structure {key!r} is ambiguous across entity pairs; "
                f"pass entity_pair"
            )
        return hits[0]

    def topology(self, tid: int) -> Topology:
        try:
            return self.topologies[tid]
        except KeyError:
            raise TopologyError(f"unknown topology id {tid}") from None

    def topologies_for_entity_pair(self, es1: str, es2: str) -> List[Topology]:
        return [
            t for t in self.topologies.values() if t.entity_pair == (es1, es2)
        ]

    def frequency_distribution(self, es1: str, es2: str) -> List[int]:
        """Frequencies for an entity-set pair, sorted descending — the
        series plotted in Figure 11."""
        return sorted(
            (t.frequency for t in self.topologies_for_entity_pair(es1, es2)),
            reverse=True,
        )

    def pairs_for_tid(self, tid: int) -> List[PairKey]:
        return [(e1, e2) for e1, e2, t in self.alltops_rows if t == tid]

    # ------------------------------------------------------------------
    # Snapshot export / import (used by repro.persist)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """The store's full state as plain-Python containers.

        ``pair_tids`` and ``_tid_by_key`` are omitted: both are derived
        (from ``alltops_rows`` and ``topologies`` respectively) and are
        rebuilt by :meth:`from_state`.
        """
        if not self._finalized:
            self.finalize()
        return {
            "topologies": [
                {
                    "tid": t.tid,
                    "key": t.key,
                    "entity_pair": list(t.entity_pair),
                    "endpoint_indices": list(t.endpoint_indices),
                    "class_signatures": [list(s) for s in t.class_signatures],
                    "frequency": t.frequency,
                    "scores": dict(t.scores),
                }
                for t in self.topologies.values()
            ],
            "alltops_rows": list(self.alltops_rows),
            "lefttops_rows": list(self.lefttops_rows),
            "excptops_rows": list(self.excptops_rows),
            "pruned_tids": sorted(self.pruned_tids),
            "pairs": [
                {
                    "e1": e1,
                    "e2": e2,
                    "entity_pair": list(self.pair_entity_types[(e1, e2)]),
                    # Sorted: pair classes live in a frozenset, whose
                    # iteration order varies with construction history;
                    # the export must be canonical so round-trips and
                    # file diffs compare equal.
                    "class_signatures": sorted(list(s) for s in classes),
                }
                for (e1, e2), classes in self.pair_classes.items()
            ],
            "truncated_pairs": self.truncated_pairs,
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        weak_rules: Optional[WeakPathRules] = None,
    ) -> "TopologyStore":
        """Rebuild a finalized store from :meth:`export_state` output."""
        store = cls(weak_rules)
        for record in state["topologies"]:
            tid = record["tid"]
            entity_pair = tuple(record["entity_pair"])
            signatures = record["class_signatures"]
            if not (
                isinstance(signatures, tuple)
                and all(isinstance(s, tuple) for s in signatures)
            ):  # loaders may pass pre-interned tuples; normalize otherwise
                signatures = tuple(tuple(s) for s in signatures)
            topology = Topology(
                tid=tid,
                key=record["key"],
                entity_pair=entity_pair,
                endpoint_indices=tuple(record["endpoint_indices"]),
                class_signatures=signatures,
                frequency=record["frequency"],
                scores=dict(record["scores"]),
            )
            store.topologies[tid] = topology
            store._tid_by_key[(topology.key, entity_pair)] = tid
        store.alltops_rows = [
            r if type(r) is tuple else tuple(r) for r in state["alltops_rows"]
        ]
        store.lefttops_rows = [
            r if type(r) is tuple else tuple(r) for r in state["lefttops_rows"]
        ]
        store.excptops_rows = [
            r if type(r) is tuple else tuple(r) for r in state["excptops_rows"]
        ]
        store.pruned_tids = set(state["pruned_tids"])
        for record in state["pairs"]:
            pair: PairKey = (record["e1"], record["e2"])
            store.pair_entity_types[pair] = tuple(record["entity_pair"])
            classes = record["class_signatures"]
            if not isinstance(classes, frozenset):
                classes = frozenset(tuple(s) for s in classes)
            store.pair_classes[pair] = classes
            store.pair_tids[pair] = set()
        for e1, e2, tid in store.alltops_rows:
            store.pair_tids.setdefault((e1, e2), set()).add(tid)
        store.truncated_pairs = int(state["truncated_pairs"])
        store._finalized = True
        return store

    def state_digest(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`export_state`.

        Two stores digest equal iff their full exported state —
        including TID assignment and ``AllTops``/``LeftTops``/
        ``ExcpTops`` *row order* — is identical.  This is the
        "bit-identical to a serial build" check the partitioned build
        (:mod:`repro.parallel`) is verified against, cheap enough to
        run inside benchmarks."""
        canonical = json.dumps(
            self.export_state(), sort_keys=True, default=repr
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Materialization into the relational database
    # ------------------------------------------------------------------
    def materialize(
        self,
        db: Database,
        include_alltops: bool = True,
        validate: bool = True,
    ) -> None:
        """Create and load TopInfo, AllTops, LeftTops, ExcpTops.

        Drops previous versions if present (the offline phase reruns in
        bulk, per Section 3.2).  ``validate=False`` skips per-row type
        checks — the snapshot-restore path re-materializes rows that
        already passed validation when they were first computed."""
        if not self._finalized:
            self.finalize()
        integer, real, text = DataType.INT, DataType.FLOAT, DataType.TEXT
        for name in ("TopInfo", "AllTops", "LeftTops", "ExcpTops"):
            if db.has_table(name):
                db.drop_table(name)

        topinfo_columns = [
            Column("TID", integer, True),
            Column("ES1", text, True),
            Column("ES2", text, True),
            Column("DETAILS", text, True),
            Column("FREQ", integer, True),
            Column("NCLASSES", integer, True),
            Column("PRUNED", DataType.BOOL, True),
        ] + [Column(score_column(s), real, True) for s in RANKING_SCHEMES]
        topinfo = db.create_table(TableSchema("TopInfo", topinfo_columns, primary_key="TID"))
        topinfo_rows = [
            (
                t.tid,
                t.entity_pair[0],
                t.entity_pair[1],
                t.key,
                t.frequency,
                t.num_classes,
                t.tid in self.pruned_tids,
            )
            + tuple(float(t.scores[s]) for s in RANKING_SCHEMES)
            for t in self.topologies.values()
        ]
        if validate:
            topinfo.bulk_load(topinfo_rows)
        else:
            topinfo.load_rows_unchecked(topinfo_rows)
        for scheme in RANKING_SCHEMES:
            topinfo.create_sorted_index(f"by_{scheme}", score_column(scheme))

        def load_pairs_table(name: str, rows: List[Tuple[object, object, int]]):
            schema = TableSchema(
                name,
                [
                    Column("E1", integer, True),
                    Column("E2", integer, True),
                    Column("TID", integer, True),
                ],
            )
            table = db.create_table(schema)
            if validate:
                table.bulk_load(rows)
            else:
                table.load_rows_unchecked(rows)
            table.create_hash_index("by_e1", ["E1"])
            table.create_hash_index("by_e2", ["E2"])
            table.create_hash_index("by_tid", ["TID"])
            return table

        if include_alltops:
            load_pairs_table("AllTops", self.alltops_rows)
        else:
            load_pairs_table("AllTops", [])
        load_pairs_table("LeftTops", self.lefttops_rows or list(self.alltops_rows))
        load_pairs_table("ExcpTops", self.excptops_rows)

    # ------------------------------------------------------------------
    # Space accounting (Table 1)
    # ------------------------------------------------------------------
    def space_report(self) -> Dict[str, int]:
        """Row counts of the derived tables, the Table-1 quantities."""
        return {
            "AllTops": len(self.alltops_rows),
            "LeftTops": len(self.lefttops_rows),
            "ExcpTops": len(self.excptops_rows),
            "TopInfo": len(self.topologies),
            "pruned_topologies": len(self.pruned_tids),
        }
