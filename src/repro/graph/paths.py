"""Simple-path enumeration: the paper's ``PS(a, b, l)``.

Section 2.1: "a node pair (a, b) determines an l-path set, denoted
PS(a, b, l), whose elements are paths of G which connect a and b and
are of length ≤ l"; all paths in the paper are simple.

The enumerator is a depth-first search with a distance-to-target bound:
a breadth-first pass from ``b`` (truncated at depth ``l``) yields
``dist(v, b)``; any partial path where ``depth + dist > l`` can never
reach ``b`` within budget and is pruned.  This keeps enumeration close
to output-sensitive on the sparse biological graphs the paper targets.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional

from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph, NodeId, Path


def bfs_distances(graph: LabeledGraph, source: NodeId, max_depth: int) -> Dict[NodeId, int]:
    """Unweighted shortest-path distances from ``source`` up to
    ``max_depth`` hops (nodes farther than that are omitted)."""
    if not graph.has_node(source):
        raise GraphError(f"unknown node {source!r}")
    dist: Dict[NodeId, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        d = dist[v]
        if d == max_depth:
            continue
        for _, nbr in graph.neighbors(v):
            if nbr not in dist:
                dist[nbr] = d + 1
                queue.append(nbr)
    return dist


def iter_simple_paths(
    graph: LabeledGraph,
    a: NodeId,
    b: NodeId,
    max_length: int,
) -> Iterator[Path]:
    """Yield every simple path from ``a`` to ``b`` of length ≤ ``max_length``.

    Paths are yielded in a deterministic order (adjacency lists are
    scanned in insertion order).  ``a == b`` yields nothing: the paper's
    2-queries relate *two* entities and a zero-length path carries no
    relationship.
    """
    if max_length < 1:
        return
    if not graph.has_node(a):
        raise GraphError(f"unknown node {a!r}")
    if not graph.has_node(b):
        raise GraphError(f"unknown node {b!r}")
    if a == b:
        return

    dist_to_b = bfs_distances(graph, b, max_length)
    if a not in dist_to_b:
        return

    node_stack: List[NodeId] = [a]
    edge_stack: List = []
    on_path = {a}

    def dfs() -> Iterator[Path]:
        current = node_stack[-1]
        depth = len(edge_stack)
        for eid, nbr in graph.neighbors(current):
            if nbr == b:
                yield Path(node_stack + [b], edge_stack + [eid], graph)
                continue
            if nbr in on_path:
                continue
            remaining = dist_to_b.get(nbr)
            if remaining is None or depth + 1 + remaining > max_length:
                continue
            node_stack.append(nbr)
            edge_stack.append(eid)
            on_path.add(nbr)
            yield from dfs()
            on_path.discard(nbr)
            edge_stack.pop()
            node_stack.pop()

    yield from dfs()


def path_set(
    graph: LabeledGraph,
    a: NodeId,
    b: NodeId,
    max_length: int,
    limit: Optional[int] = None,
) -> List[Path]:
    """Materialized ``PS(a, b, l)``.

    ``limit`` is a safety valve for weak-relationship hot spots (the
    paper observed up to 5000 paths for a single pair at l=4); when hit,
    the list is truncated and the caller is expected to surface that.
    """
    out: List[Path] = []
    for path in iter_simple_paths(graph, a, b, max_length):
        out.append(path)
        if limit is not None and len(out) >= limit:
            break
    return out


def paths_from_source(
    graph: LabeledGraph,
    source: NodeId,
    max_length: int,
    target_type: str,
    per_pair_limit: Optional[int] = None,
) -> Dict[NodeId, List[Path]]:
    """All simple paths of length ≤ ``max_length`` from ``source`` to
    *every* node of ``target_type``, grouped by endpoint.

    One DFS per source instead of one per pair — this is the workhorse
    of the offline AllTops computation (Section 4.1), which must
    enumerate paths between every related entity pair.  ``per_pair_limit``
    truncates pathological endpoints (the paper's weak-relationship hot
    spots reach thousands of paths per pair).
    """
    if not graph.has_node(source):
        raise GraphError(f"unknown node {source!r}")
    results: Dict[NodeId, List[Path]] = {}
    node_stack: List[NodeId] = [source]
    edge_stack: List = []
    on_path = {source}

    def dfs() -> None:
        current = node_stack[-1]
        depth = len(edge_stack)
        if depth == max_length:
            return
        for eid, nbr in graph.neighbors(current):
            if nbr in on_path:
                continue
            is_target = graph.node_type(nbr) == target_type
            if is_target:
                bucket = results.setdefault(nbr, [])
                if per_pair_limit is None or len(bucket) < per_pair_limit:
                    bucket.append(
                        Path(node_stack + [nbr], edge_stack + [eid], graph)
                    )
            if depth + 1 < max_length:
                node_stack.append(nbr)
                edge_stack.append(eid)
                on_path.add(nbr)
                dfs()
                on_path.discard(nbr)
                edge_stack.pop()
                node_stack.pop()

    dfs()
    return results


def pairs_within_distance(
    graph: LabeledGraph,
    source: NodeId,
    max_length: int,
    target_type: str,
) -> List[NodeId]:
    """Nodes of ``target_type`` reachable from ``source`` by *some simple
    path* of length ≤ ``max_length``.

    Shortest paths are always simple, so BFS distance ≤ l is equivalent
    to "related by some simple path of length ≤ l".  Used by the offline
    AllTops computation to find candidate pairs before enumerating their
    full path sets.
    """
    dist = bfs_distances(graph, source, max_length)
    return [
        nid
        for nid, d in dist.items()
        if nid != source and d >= 1 and graph.node_type(nid) == target_type
    ]
