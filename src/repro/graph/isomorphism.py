"""Labeled subgraph isomorphism (VF2-flavoured backtracking).

Section 2.1 defines *subgraph isomorphism*: an injection ``f`` from the
pattern's nodes into the target's nodes preserving node types and, for
every pattern edge, the existence of a target edge of the same type
between the images.  This module provides:

* :func:`subgraph_isomorphisms` — enumerate all such injections
  (optionally anchored: specific pattern nodes pre-bound to specific
  target nodes), with injective *edge* assignments so parallel edges are
  matched to distinct target edges;
* :func:`has_subgraph_isomorphism` — existence test;
* :func:`find_embeddings` — embeddings returned as (node map, edge map)
  pairs, used by instance retrieval (Section 6.2.4).

The matcher is used where canonical forms do not apply: checking whether
a *specific pair of data entities* is related by a given topology
structure (the SQL method's existence queries and the exactness check of
``l-Top`` membership).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.graph.labeled_graph import EdgeId, LabeledGraph, NodeId

NodeMap = Dict[NodeId, NodeId]
EdgeMap = Dict[EdgeId, EdgeId]


def _pattern_order(pattern: LabeledGraph, anchored: List[NodeId]) -> List[NodeId]:
    """Order pattern nodes for backtracking: anchored nodes first, then a
    connectivity-first order (each subsequent node adjacent to an earlier
    one when possible) to fail fast."""
    order: List[NodeId] = list(anchored)
    seen = set(order)
    # Deterministic frontier expansion.
    remaining = sorted((n for n in pattern.nodes() if n not in seen), key=str)
    while remaining:
        picked = None
        for candidate in remaining:
            if any(nbr in seen for _, nbr in pattern.neighbors(candidate)):
                picked = candidate
                break
        if picked is None:
            picked = remaining[0]
        order.append(picked)
        seen.add(picked)
        remaining.remove(picked)
    return order


def _assign_edges(
    pattern: LabeledGraph,
    target: LabeledGraph,
    node_map: NodeMap,
) -> Iterator[EdgeMap]:
    """Enumerate injective assignments of pattern edges to target edges
    consistent with ``node_map``.  With no parallel edges this yields at
    most one assignment."""
    pattern_edges = sorted(pattern.edges(), key=str)

    def backtrack(idx: int, used: set, acc: EdgeMap) -> Iterator[EdgeMap]:
        if idx == len(pattern_edges):
            yield dict(acc)
            return
        peid = pattern_edges[idx]
        pu, pv = pattern.edge_endpoints(peid)
        ptype = pattern.edge_type(peid)
        tu, tv = node_map[pu], node_map[pv]
        for teid in target.edges_between(tu, tv):
            if teid in used or target.edge_type(teid) != ptype:
                continue
            used.add(teid)
            acc[peid] = teid
            yield from backtrack(idx + 1, used, acc)
            used.discard(teid)
            del acc[peid]

    yield from backtrack(0, set(), {})


def subgraph_isomorphisms(
    pattern: LabeledGraph,
    target: LabeledGraph,
    anchors: Optional[NodeMap] = None,
) -> Iterator[NodeMap]:
    """Enumerate injective node maps ``pattern -> target`` preserving node
    types and edge-type adjacency (with enough parallel target edges to
    host parallel pattern edges).

    ``anchors`` pre-binds pattern nodes to target nodes (used to anchor a
    topology's two endpoints at a concrete entity pair).
    """
    anchors = anchors or {}
    for p_node, t_node in anchors.items():
        if pattern.node_type(p_node) != target.node_type(t_node):
            return
    anchored_targets = list(anchors.values())
    if len(set(anchored_targets)) != len(anchored_targets):
        return

    order = _pattern_order(pattern, sorted(anchors, key=str))
    mapping: NodeMap = dict(anchors)
    used = set(anchors.values())

    def candidates(p_node: NodeId) -> Iterator[NodeId]:
        """Target candidates for p_node: via an already-mapped neighbour
        when possible (cheap), else all nodes of the right type."""
        ptype = pattern.node_type(p_node)
        for peid, pnbr in pattern.neighbors(p_node):
            if pnbr in mapping:
                etype = pattern.edge_type(peid)
                seen = set()
                for teid, tnbr in target.neighbors(mapping[pnbr]):
                    if (
                        tnbr not in seen
                        and target.edge_type(teid) == etype
                        and target.node_type(tnbr) == ptype
                    ):
                        seen.add(tnbr)
                        yield tnbr
                return
        for t_node in target.nodes():
            if target.node_type(t_node) == ptype:
                yield t_node

    def feasible(p_node: NodeId, t_node: NodeId) -> bool:
        """Every pattern edge from p_node to an already-mapped node must
        have enough same-type parallel target edges."""
        required: Dict[Tuple[NodeId, str], int] = {}
        for peid, pnbr in pattern.neighbors(p_node):
            if pnbr in mapping or pnbr == p_node:
                key = (mapping.get(pnbr, t_node), pattern.edge_type(peid))
                required[key] = required.get(key, 0) + 1
        for (t_nbr, etype), count in required.items():
            available = sum(
                1 for eid in target.edges_between(t_node, t_nbr) if target.edge_type(eid) == etype
            )
            if available < count:
                return False
        return True

    def backtrack(idx: int) -> Iterator[NodeMap]:
        if idx == len(order):
            yield dict(mapping)
            return
        p_node = order[idx]
        if p_node in mapping:  # anchored
            if feasible(p_node, mapping[p_node]):
                yield from backtrack(idx + 1)
            return
        for t_node in candidates(p_node):
            if t_node in used:
                continue
            if not feasible(p_node, t_node):
                continue
            mapping[p_node] = t_node
            used.add(t_node)
            yield from backtrack(idx + 1)
            del mapping[p_node]
            used.discard(t_node)

    # Anchored nodes must themselves satisfy adjacency with one another.
    for p_node in sorted(anchors, key=str):
        if not feasible(p_node, anchors[p_node]):
            return
    yield from backtrack(0)


def has_subgraph_isomorphism(
    pattern: LabeledGraph,
    target: LabeledGraph,
    anchors: Optional[NodeMap] = None,
) -> bool:
    """Does at least one (anchored) subgraph isomorphism exist?"""
    for _ in subgraph_isomorphisms(pattern, target, anchors):
        return True
    return False


def find_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    anchors: Optional[NodeMap] = None,
    limit: Optional[int] = None,
) -> List[Tuple[NodeMap, EdgeMap]]:
    """Full embeddings (node map + injective edge map).

    ``limit`` caps the number of embeddings returned; enumeration stops
    early once reached.  This powers instance-level retrieval for a
    topology (the paper reports 1–50 s per topology on Biozon).
    """
    results: List[Tuple[NodeMap, EdgeMap]] = []
    for node_map in subgraph_isomorphisms(pattern, target, anchors):
        for edge_map in _assign_edges(pattern, target, node_map):
            results.append((node_map, edge_map))
            if limit is not None and len(results) >= limit:
                return results
    return results
