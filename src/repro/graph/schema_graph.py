"""Schema graphs and schema-path enumeration.

The database schema (the paper's Figure 1) is itself a small labeled
multigraph: nodes are entity sets, edges are relationship sets.  A
*schema path* is a walk in this multigraph — entity types may repeat
(``Protein-encodes-DNA-encodes-Protein`` is a legal schema path because
at the instance level the two proteins are distinct entities), which is
why walks rather than simple paths are enumerated here.

The paper counts "ten schema paths of length three or less that connect
proteins and DNAs" in Biozon; :func:`enumerate_schema_paths` reproduces
that count on our schema (asserted in tests and ``bench_counts``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class SchemaEdge:
    """A relationship set: ``name`` connects entity sets ``left`` and
    ``right`` (undirected, like every relationship in the paper)."""

    name: str
    left: str
    right: str

    def other(self, entity_type: str) -> str:
        if entity_type == self.left:
            return self.right
        if entity_type == self.right:
            return self.left
        raise SchemaError(f"{entity_type!r} is not an endpoint of {self.name!r}")

    def touches(self, entity_type: str) -> bool:
        return entity_type in (self.left, self.right)


class SchemaGraph:
    """The ER schema as an undirected multigraph of entity sets."""

    def __init__(self, entity_types: Sequence[str], edges: Sequence[SchemaEdge]) -> None:
        if len(set(entity_types)) != len(entity_types):
            raise SchemaError("duplicate entity types in schema")
        self._entity_types: Tuple[str, ...] = tuple(entity_types)
        self._edges: Dict[str, SchemaEdge] = {}
        self._incident: Dict[str, List[SchemaEdge]] = {t: [] for t in entity_types}
        for edge in edges:
            if edge.name in self._edges:
                raise SchemaError(f"duplicate relationship name {edge.name!r}")
            for endpoint in (edge.left, edge.right):
                if endpoint not in self._incident:
                    raise SchemaError(
                        f"relationship {edge.name!r} references unknown entity type {endpoint!r}"
                    )
            self._edges[edge.name] = edge
            self._incident[edge.left].append(edge)
            if edge.right != edge.left:
                self._incident[edge.right].append(edge)

    @property
    def entity_types(self) -> Tuple[str, ...]:
        return self._entity_types

    @property
    def relationship_names(self) -> List[str]:
        return list(self._edges)

    def edge(self, name: str) -> SchemaEdge:
        try:
            return self._edges[name]
        except KeyError:
            raise SchemaError(f"unknown relationship {name!r}") from None

    def incident(self, entity_type: str) -> List[SchemaEdge]:
        try:
            return self._incident[entity_type]
        except KeyError:
            raise SchemaError(f"unknown entity type {entity_type!r}") from None

    def has_entity_type(self, entity_type: str) -> bool:
        return entity_type in self._incident

    def as_labeled_graph(self) -> LabeledGraph:
        """View the schema itself as a :class:`LabeledGraph` (node per
        entity set) — used for rendering and sanity checks."""
        g = LabeledGraph()
        for t in self._entity_types:
            g.add_node(t, t)
        for edge in self._edges.values():
            g.add_edge(edge.name, edge.left, edge.right, edge.name)
        return g


@dataclass(frozen=True)
class SchemaPath:
    """A schema-level walk: alternating entity types and relationship
    names, e.g. ``(Protein, uni_encodes, Unigene, uni_contains, DNA)``.

    Two walks that are reverses of one another describe the same labeled
    path class; :meth:`signature` is the direction-independent key.
    """

    labels: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.labels) % 2 == 0 or len(self.labels) < 3:
            raise SchemaError("schema path must alternate type/rel/type/...")

    @property
    def length(self) -> int:
        return len(self.labels) // 2

    @property
    def source_type(self) -> str:
        return self.labels[0]

    @property
    def target_type(self) -> str:
        return self.labels[-1]

    @property
    def node_labels(self) -> Tuple[str, ...]:
        return self.labels[0::2]

    @property
    def edge_labels(self) -> Tuple[str, ...]:
        return self.labels[1::2]

    def signature(self) -> Tuple[str, ...]:
        return min(self.labels, self.labels[::-1])

    def display(self) -> str:
        parts: List[str] = []
        for i, label in enumerate(self.labels):
            parts.append(label if i % 2 == 0 else f"-{label}-")
        return "".join(parts)


def enumerate_schema_paths(
    schema: SchemaGraph,
    source_type: str,
    target_type: str,
    max_length: int,
) -> List[SchemaPath]:
    """All schema paths (walks, deduplicated under reversal) of length
    ≤ ``max_length`` between two entity sets, in deterministic order.
    """
    if not schema.has_entity_type(source_type):
        raise SchemaError(f"unknown entity type {source_type!r}")
    if not schema.has_entity_type(target_type):
        raise SchemaError(f"unknown entity type {target_type!r}")

    results: List[SchemaPath] = []
    seen: set = set()

    def extend(labels: List[str], current: str) -> None:
        depth = len(labels) // 2
        if depth >= 1 and current == target_type:
            path = SchemaPath(tuple(labels))
            sig = path.signature()
            if sig not in seen:
                seen.add(sig)
                results.append(path)
        if depth == max_length:
            return
        for edge in schema.incident(current):
            nxt = edge.other(current)
            extend(labels + [edge.name, nxt], nxt)

    extend([source_type], source_type)
    results.sort(key=lambda p: (p.length, p.labels))
    return results


def instantiate_template(
    paths: Sequence[SchemaPath],
    source_id: str = "@a",
    target_id: str = "@b",
) -> Tuple[LabeledGraph, List[List[str]]]:
    """Materialize template paths sharing only the two endpoints.

    Returns the template graph plus, per input path, the list of its node
    ids in order.  Intermediate nodes get fresh ids ``@p{i}n{j}``; the
    caller may then merge same-type intermediates to enumerate sharing
    patterns (see :mod:`repro.graph.schema_enum`).
    """
    g = LabeledGraph()
    node_lists: List[List[str]] = []
    if not paths:
        return g, node_lists
    g.add_node(source_id, paths[0].source_type)
    g.add_node(target_id, paths[0].target_type)
    for i, path in enumerate(paths):
        if path.source_type != g.node_type(source_id) or path.target_type != g.node_type(target_id):
            raise SchemaError("all template paths must share endpoint types")
        nodes = [source_id]
        types = path.node_labels
        for j in range(1, len(types) - 1):
            nid = f"@p{i}n{j}"
            g.add_node(nid, types[j])
            nodes.append(nid)
        nodes.append(target_id)
        for j, rel in enumerate(path.edge_labels):
            g.add_edge(f"@p{i}e{j}", nodes[j], nodes[j + 1], rel)
        node_lists.append(nodes)
    return g, node_lists
