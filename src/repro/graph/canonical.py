"""Canonical forms for small labeled multigraphs.

The paper's Definition 1/2 require grouping graphs by labeled-graph
isomorphism (the relation ``G ≃ G'`` of Section 2.1).  Rather than
pairwise isomorphism tests, we compute a *canonical form* — a hashable
value equal for two graphs iff they are isomorphic — so isomorphism
classes become dictionary keys.  This is the backbone of path
equivalence classes, topology identity (``TID``), and the dedup step of
the offline AllTops computation.

Algorithm: individualization–refinement (the classical scheme behind
nauty, without its pruning machinery — topologies are tiny graphs, at
most a few tens of nodes, so the exhaustive variant is both simple and
fast enough):

1. colour nodes by node type,
2. refine colours by iterating "my colour + multiset of (edge type,
   neighbour colour) over incident edges" until stable,
3. if the colouring is discrete, read the encoding off the colour order;
   otherwise individualize each member of the first non-singleton colour
   class in turn, refine, and recurse,
4. the canonical form is the lexicographically smallest encoding found.

The branching set in step 3 is determined by the stable colouring, which
is isomorphism-invariant, so the minimum over branches is too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.labeled_graph import LabeledGraph, NodeId

# A canonical form: (node-type tuple in canonical order, sorted edge
# tuples (i, j, edge_type) with i < j canonical indices).
CanonicalForm = Tuple[Tuple[str, ...], Tuple[Tuple[int, int, str], ...]]


def _refine(graph: LabeledGraph, colors: Dict[NodeId, int]) -> Dict[NodeId, int]:
    """Stable colour refinement (1-dimensional Weisfeiler-Leman with edge
    labels).  Signatures are re-indexed in sorted order every round so the
    result is deterministic and isomorphism-invariant."""
    num_colors = len(set(colors.values()))
    while True:
        signatures: Dict[NodeId, Tuple] = {}
        for v in graph.nodes():
            neighborhood = sorted(
                (graph.edge_type(eid), colors[nbr]) for eid, nbr in graph.neighbors(v)
            )
            signatures[v] = (colors[v], tuple(neighborhood))
        ordered = sorted(set(signatures.values()))
        index = {sig: i for i, sig in enumerate(ordered)}
        new_colors = {v: index[signatures[v]] for v in signatures}
        new_num = len(ordered)
        if new_num == num_colors:
            return new_colors
        colors = new_colors
        num_colors = new_num


def _encode(graph: LabeledGraph, order: List[NodeId]) -> CanonicalForm:
    """Encode the graph under a total node order."""
    position = {nid: i for i, nid in enumerate(order)}
    node_types = tuple(graph.node_type(nid) for nid in order)
    edge_rows: List[Tuple[int, int, str]] = []
    for eid in graph.edges():
        u, v = graph.edge_endpoints(eid)
        i, j = position[u], position[v]
        if i > j:
            i, j = j, i
        edge_rows.append((i, j, graph.edge_type(eid)))
    edge_rows.sort()
    return node_types, tuple(edge_rows)


def _first_non_singleton_cell(colors: Dict[NodeId, int]) -> Optional[List[NodeId]]:
    """Members of the smallest-indexed colour class with more than one
    node, or ``None`` if the colouring is discrete."""
    by_color: Dict[int, List[NodeId]] = {}
    for v, c in colors.items():
        by_color.setdefault(c, []).append(v)
    for c in sorted(by_color):
        cell = by_color[c]
        if len(cell) > 1:
            return cell
    return None


def canonical_form_and_order(
    graph: LabeledGraph,
) -> Tuple[CanonicalForm, List[NodeId]]:
    """Canonical form plus the node order realizing it.

    The order maps canonical index -> original node id, letting callers
    track which canonical positions specific nodes (e.g. a topology's
    two endpoints) occupy.
    """
    if graph.node_count == 0:
        return ((), ()), []

    initial_types = sorted(set(graph.node_type(v) for v in graph.nodes()))
    type_index = {t: i for i, t in enumerate(initial_types)}
    colors = {v: type_index[graph.node_type(v)] for v in graph.nodes()}
    colors = _refine(graph, colors)

    best: List[Optional[Tuple[CanonicalForm, List[NodeId]]]] = [None]

    def search(current: Dict[NodeId, int]) -> None:
        cell = _first_non_singleton_cell(current)
        if cell is None:
            order = sorted(current, key=current.__getitem__)
            encoding = _encode(graph, order)
            if best[0] is None or encoding < best[0][0]:
                best[0] = (encoding, order)
            return
        fresh = max(current.values()) + 1
        for v in cell:
            branched = dict(current)
            branched[v] = fresh
            search(_refine(graph, branched))

    search(colors)
    assert best[0] is not None
    return best[0]


def canonical_form(graph: LabeledGraph) -> CanonicalForm:
    """Canonical form of a labeled multigraph.

    ``canonical_form(g1) == canonical_form(g2)`` iff ``g1`` and ``g2``
    are isomorphic as labeled graphs (same node/edge types, including
    parallel-edge multiplicities).
    """
    form, _ = canonical_form_and_order(graph)
    return form


def canonical_key(graph: LabeledGraph) -> str:
    """Compact, deterministic string rendering of the canonical form.

    Suitable as a storage key (the ``details`` column of the paper's
    TopInfo table stores exactly this structural description).
    """
    node_types, edges = canonical_form(graph)
    nodes_part = ",".join(node_types)
    edges_part = ";".join(f"{i}-{j}:{t}" for i, j, t in edges)
    return f"[{nodes_part}]|[{edges_part}]"


def graph_from_canonical(form: CanonicalForm) -> LabeledGraph:
    """Materialize a representative graph from a canonical form (node ids
    are the canonical indices).  Useful for rendering topologies."""
    node_types, edges = form
    g = LabeledGraph()
    for i, t in enumerate(node_types):
        g.add_node(i, t)
    for k, (i, j, t) in enumerate(edges):
        g.add_edge(f"ce{k}", i, j, t)
    return g


def parse_canonical_key(key: str) -> CanonicalForm:
    """Inverse of :func:`canonical_key`."""
    nodes_part, edges_part = key.split("|")
    nodes_inner = nodes_part[1:-1]
    node_types = tuple(nodes_inner.split(",")) if nodes_inner else ()
    edges_inner = edges_part[1:-1]
    edges: List[Tuple[int, int, str]] = []
    if edges_inner:
        for item in edges_inner.split(";"):
            endpoints, etype = item.split(":", 1)
            i, j = endpoints.split("-")
            edges.append((int(i), int(j), etype))
    return node_types, tuple(edges)


def are_isomorphic(g1: LabeledGraph, g2: LabeledGraph) -> bool:
    """Labeled-graph isomorphism via canonical forms (the ``≃`` relation)."""
    if g1.node_count != g2.node_count or g1.edge_count != g2.edge_count:
        return False
    if g1.type_counts() != g2.type_counts():
        return False
    return canonical_form(g1) == canonical_form(g2)
