"""Labeled undirected multigraphs — the paper's data-graph model.

Section 2.1 of the paper models a database as a large undirected graph
``G = (V, E)`` where every node carries an entity type and every edge a
relationship type.  :class:`LabeledGraph` implements exactly that model:

* nodes are identified by arbitrary hashable ids (the paper uses the
  primary-key value of the underlying row, globally unique),
* edges are identified by their own ids (the primary key of the
  relationship row) and connect two nodes,
* parallel edges between the same pair of nodes are allowed (two
  relationship rows may connect the same entities), and
* everything is undirected — the paper treats each relationship and its
  reverse as the same edge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError

NodeId = Hashable
EdgeId = Hashable


class LabeledGraph:
    """An undirected multigraph with typed nodes and typed edges.

    Example
    -------
    >>> g = LabeledGraph()
    >>> g.add_node("p1", "Protein")
    >>> g.add_node("d1", "DNA")
    >>> g.add_edge("e1", "p1", "d1", "encodes")
    >>> g.node_type("p1")
    'Protein'
    >>> sorted(nbr for _, nbr in g.neighbors("p1"))
    ['d1']
    """

    __slots__ = ("_nodes", "_edges", "_adjacency")

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, str] = {}
        # edge id -> (u, v, edge_type); (u, v) stored in insertion order but
        # semantically unordered.
        self._edges: Dict[EdgeId, Tuple[NodeId, NodeId, str]] = {}
        self._adjacency: Dict[NodeId, List[Tuple[EdgeId, NodeId]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, node_type: str) -> None:
        """Add a node.  Re-adding an existing id with the same type is a
        no-op; with a different type it is an error."""
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing != node_type:
                raise GraphError(
                    f"node {node_id!r} already present with type {existing!r}, "
                    f"cannot re-add with type {node_type!r}"
                )
            return
        self._nodes[node_id] = node_type
        self._adjacency[node_id] = []

    def add_edge(self, edge_id: EdgeId, u: NodeId, v: NodeId, edge_type: str) -> None:
        """Add an undirected edge between existing nodes ``u`` and ``v``."""
        if edge_id in self._edges:
            raise GraphError(f"edge id {edge_id!r} already present")
        if u not in self._nodes:
            raise GraphError(f"edge {edge_id!r}: unknown endpoint {u!r}")
        if v not in self._nodes:
            raise GraphError(f"edge {edge_id!r}: unknown endpoint {v!r}")
        if u == v:
            raise GraphError(f"edge {edge_id!r}: self loops are not part of the model")
        self._edges[edge_id] = (u, v, edge_type)
        self._adjacency[u].append((edge_id, v))
        self._adjacency[v].append((edge_id, u))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def edges(self) -> Iterator[EdgeId]:
        return iter(self._edges)

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: EdgeId) -> bool:
        return edge_id in self._edges

    def node_type(self, node_id: NodeId) -> str:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def edge_type(self, edge_id: EdgeId) -> str:
        try:
            return self._edges[edge_id][2]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id!r}") from None

    def edge_endpoints(self, edge_id: EdgeId) -> Tuple[NodeId, NodeId]:
        try:
            u, v, _ = self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id!r}") from None
        return u, v

    def neighbors(self, node_id: NodeId) -> List[Tuple[EdgeId, NodeId]]:
        """Return ``[(edge_id, neighbor), ...]`` for every incident edge."""
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def degree(self, node_id: NodeId) -> int:
        return len(self.neighbors(node_id))

    def edges_between(self, u: NodeId, v: NodeId) -> List[EdgeId]:
        """All parallel edges connecting ``u`` and ``v``."""
        return [eid for eid, nbr in self.neighbors(u) if nbr == v]

    def node_types(self) -> Dict[NodeId, str]:
        return dict(self._nodes)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, node_ids: Iterable[NodeId], edge_ids: Iterable[EdgeId]) -> "LabeledGraph":
        """Build the subgraph induced by explicit node and edge id sets."""
        sub = LabeledGraph()
        for nid in node_ids:
            sub.add_node(nid, self.node_type(nid))
        for eid in edge_ids:
            u, v, etype = self._edges[eid]
            if not (sub.has_node(u) and sub.has_node(v)):
                raise GraphError(f"edge {eid!r} endpoints not in the node set")
            sub.add_edge(eid, u, v, etype)
        return sub

    def union(self, other: "LabeledGraph") -> "LabeledGraph":
        """Graph union as defined in Section 2.1: union of node and edge
        sets (ids shared between the operands are merged)."""
        out = LabeledGraph()
        for g in (self, other):
            for nid in g.nodes():
                out.add_node(nid, g.node_type(nid))
        for g in (self, other):
            for eid in g.edges():
                if out.has_edge(eid):
                    continue
                u, v, etype = g._edges[eid]
                out.add_edge(eid, u, v, etype)
        return out

    def copy(self) -> "LabeledGraph":
        out = LabeledGraph()
        out._nodes = dict(self._nodes)
        out._edges = dict(self._edges)
        out._adjacency = {k: list(v) for k, v in self._adjacency.items()}
        return out

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def type_counts(self) -> Dict[str, int]:
        """Histogram of node types (useful in reports and tests)."""
        counts: Dict[str, int] = {}
        for t in self._nodes.values():
            counts[t] = counts.get(t, 0) + 1
        return counts

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabeledGraph(nodes={self.node_count}, edges={self.edge_count})"


def union_all(graphs: Iterable[LabeledGraph]) -> LabeledGraph:
    """Union an iterable of graphs (id-based merge, as in the paper)."""
    out = LabeledGraph()
    for g in graphs:
        for nid in g.nodes():
            out.add_node(nid, g.node_type(nid))
        for eid in g.edges():
            if out.has_edge(eid):
                continue
            u, v = g.edge_endpoints(eid)
            out.add_edge(eid, u, v, g.edge_type(eid))
    return out


class Path:
    """A simple path: alternating nodes and edges, no node repeated.

    The paper treats a path as a subgraph of the data graph; use
    :meth:`as_graph` for that view and :meth:`signature` for the labeled
    isomorphism class of a *path-shaped* graph (cheap special case of
    canonical form — a path is isomorphic to another path iff their
    label sequences match forward or reversed).
    """

    __slots__ = ("nodes", "edges", "_graph")

    def __init__(self, nodes: List[NodeId], edges: List[EdgeId], graph: LabeledGraph) -> None:
        if len(nodes) != len(edges) + 1:
            raise GraphError("path must have exactly one more node than edges")
        if len(set(nodes)) != len(nodes):
            raise GraphError("paths are simple: no node may repeat")
        self.nodes: Tuple[NodeId, ...] = tuple(nodes)
        self.edges: Tuple[EdgeId, ...] = tuple(edges)
        self._graph = graph

    @property
    def length(self) -> int:
        """Number of edges traversed (paper's definition of path length)."""
        return len(self.edges)

    @property
    def source(self) -> NodeId:
        return self.nodes[0]

    @property
    def target(self) -> NodeId:
        return self.nodes[-1]

    def label_sequence(self) -> Tuple[str, ...]:
        """Alternating node/edge type labels from source to target."""
        g = self._graph
        labels: List[str] = [g.node_type(self.nodes[0])]
        for eid, nid in zip(self.edges, self.nodes[1:]):
            labels.append(g.edge_type(eid))
            labels.append(g.node_type(nid))
        return tuple(labels)

    def signature(self) -> Tuple[str, ...]:
        """Direction-independent label sequence: the lexicographic minimum
        of the forward and reversed sequences.  Two simple paths have equal
        signatures iff they are isomorphic as labeled graphs."""
        fwd = self.label_sequence()
        return min(fwd, fwd[::-1])

    def as_graph(self) -> LabeledGraph:
        return self._graph.subgraph(self.nodes, self.edges)

    def reversed(self) -> "Path":
        return Path(list(self.nodes[::-1]), list(self.edges[::-1]), self._graph)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.nodes == other.nodes and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.nodes, self.edges))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hops = [str(self.nodes[0])]
        for eid, nid in zip(self.edges, self.nodes[1:]):
            hops.append(f"-[{eid}]-{nid}")
        return "Path(" + "".join(hops) + ")"
