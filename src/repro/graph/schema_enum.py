"""Enumeration of *possible* topologies from the schema alone.

Section 3.1: the SQL method must enumerate every topology that could
possibly relate two entity sets — "every combination (and possible
intermixing) of the ... schema paths" — before probing the database for
each one (88453 possible 3-topologies for Protein/DNA in Biozon, of
which only ~200 are ever observed).

A possible l-topology between entity sets ``t1`` and ``t2`` is an
isomorphism class of a graph ``G`` obtainable as the union of one
representative simple path per path-equivalence class, per Definition 2.
We enumerate them constructively:

1. pick a non-empty subset ``S`` of the schema path classes,
2. instantiate one template path per class, sharing only the endpoints,
3. enumerate every way of merging same-typed intermediate nodes across
   different paths (two nodes of the *same* path may never merge — paths
   are simple), identifying coincident same-type edges,
4. keep the glued graph only if it is *self-consistent*: the set of path
   classes it actually realizes between the endpoints equals ``S``, and
   some choice of one path per class unions to exactly the whole graph
   (otherwise the graph can never arise from Definition 2),
5. deduplicate by canonical form.

Duplicate relationship rows (same-type parallel edges between the same
entity pair) are excluded from the schema-level enumeration; they denote
redundant tuples rather than distinct biology.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.canonical import CanonicalForm, canonical_form
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.paths import iter_simple_paths
from repro.graph.schema_graph import (
    SchemaGraph,
    SchemaPath,
    enumerate_schema_paths,
    instantiate_template,
)

SOURCE_ID = "@a"
TARGET_ID = "@b"


@dataclass(frozen=True)
class PossibleTopology:
    """One enumerated possible topology.

    ``form`` is the canonical identity; ``graph`` a representative with
    endpoints :data:`SOURCE_ID` / :data:`TARGET_ID`; ``class_signatures``
    the schema-path classes whose union realizes it.
    """

    form: CanonicalForm
    graph: LabeledGraph
    class_signatures: Tuple[Tuple[str, ...], ...]

    @property
    def num_classes(self) -> int:
        return len(self.class_signatures)


def _constrained_partitions(
    items: Sequence[str],
    owner: Dict[str, int],
) -> Iterator[List[List[str]]]:
    """Set partitions of ``items`` where no block contains two items with
    the same ``owner`` (intermediates of one path must stay distinct)."""
    items = list(items)
    blocks: List[List[str]] = []

    def rec(i: int) -> Iterator[List[List[str]]]:
        if i == len(items):
            yield [list(b) for b in blocks]
            return
        item = items[i]
        for block in blocks:
            if all(owner[member] != owner[item] for member in block):
                block.append(item)
                yield from rec(i + 1)
                block.pop()
        blocks.append([item])
        yield from rec(i + 1)
        blocks.pop()

    yield from rec(0)


def _merge_graph(
    template: LabeledGraph,
    merge_map: Dict[str, str],
) -> LabeledGraph:
    """Apply a node-merge map to the template, identifying same-type
    edges that coincide after the merge."""
    merged = LabeledGraph()
    for nid in template.nodes():
        rep = merge_map.get(nid, nid)
        if not merged.has_node(rep):
            merged.add_node(rep, template.node_type(nid))
    seen_edges: Set[Tuple[str, str, str]] = set()
    counter = 0
    for eid in template.edges():
        u, v = template.edge_endpoints(eid)
        ru, rv = merge_map.get(u, u), merge_map.get(v, v)
        etype = template.edge_type(eid)
        key = (min(str(ru), str(rv)), max(str(ru), str(rv)), etype)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        merged.add_edge(f"@m{counter}", ru, rv, etype)
        counter += 1
    return merged


def _realized_classes(
    graph: LabeledGraph,
    max_length: int,
) -> Dict[Tuple[str, ...], List]:
    """Group the simple endpoint-to-endpoint paths of a glued graph by
    class signature."""
    grouped: Dict[Tuple[str, ...], List] = {}
    for path in iter_simple_paths(graph, SOURCE_ID, TARGET_ID, max_length):
        grouped.setdefault(path.signature(), []).append(path)
    return grouped


def _has_exact_cover(
    graph: LabeledGraph,
    grouped: Dict[Tuple[str, ...], List],
) -> bool:
    """Does some choice of one path per class union to *all* edges?"""
    all_edges = frozenset(graph.edges())
    class_list = sorted(grouped, key=lambda s: (len(s), s))

    def rec(idx: int, covered: frozenset) -> bool:
        if idx == len(class_list):
            return covered == all_edges
        remaining_classes = class_list[idx:]
        # Optimistic bound: even taking every path of every remaining
        # class cannot cover what is missing -> prune.
        optimistic = set(covered)
        for sig in remaining_classes:
            for path in grouped[sig]:
                optimistic.update(path.edges)
        if not all_edges <= optimistic:
            return False
        for path in grouped[class_list[idx]]:
            if rec(idx + 1, covered | frozenset(path.edges)):
                return True
        return False

    return rec(0, frozenset())


def enumerate_possible_topologies(
    schema: SchemaGraph,
    source_type: str,
    target_type: str,
    max_length: int,
    max_subset_size: Optional[int] = None,
    max_results: Optional[int] = None,
) -> List[PossibleTopology]:
    """Enumerate possible l-topologies between two entity sets.

    ``max_subset_size`` caps how many path classes may be combined (the
    paper's full 3-topology enumeration mixes up to all ten classes;
    capping trades completeness for time and is reported by the caller).
    ``max_results`` stops enumeration once that many distinct topologies
    have been found.
    """
    classes = enumerate_schema_paths(schema, source_type, target_type, max_length)
    limit = len(classes) if max_subset_size is None else min(max_subset_size, len(classes))
    found: Dict[CanonicalForm, PossibleTopology] = {}

    for size in range(1, limit + 1):
        for subset in itertools.combinations(classes, size):
            template, node_lists = instantiate_template(subset, SOURCE_ID, TARGET_ID)
            owner: Dict[str, int] = {}
            by_type: Dict[str, List[str]] = {}
            for path_idx, nodes in enumerate(node_lists):
                for nid in nodes[1:-1]:
                    owner[nid] = path_idx
                    by_type.setdefault(template.node_type(nid), []).append(nid)

            type_partitions = [
                list(_constrained_partitions(items, owner)) for items in by_type.values()
            ]
            subset_sigs = frozenset(p.signature() for p in subset)

            for combo in itertools.product(*type_partitions) if type_partitions else [()]:
                merge_map: Dict[str, str] = {}
                for partition in combo:
                    for block in partition:
                        rep = block[0]
                        for member in block[1:]:
                            merge_map[member] = rep
                glued = _merge_graph(template, merge_map)
                grouped = _realized_classes(glued, max_length)
                if frozenset(grouped) != subset_sigs:
                    continue
                if not _has_exact_cover(glued, grouped):
                    continue
                form = canonical_form(glued)
                if form in found:
                    continue
                found[form] = PossibleTopology(
                    form=form,
                    graph=glued,
                    class_signatures=tuple(sorted(subset_sigs)),
                )
                if max_results is not None and len(found) >= max_results:
                    return list(found.values())
    return list(found.values())


def count_possible_topologies(
    schema: SchemaGraph,
    source_type: str,
    target_type: str,
    max_length: int,
    max_subset_size: Optional[int] = None,
) -> int:
    """Convenience counter for reporting (Section 3.1's 88453 figure)."""
    return len(
        enumerate_possible_topologies(
            schema,
            source_type,
            target_type,
            max_length,
            max_subset_size=max_subset_size,
        )
    )
