"""Graph substrate: labeled multigraphs, canonical forms, isomorphism,
path enumeration, and schema-level topology enumeration.

This package implements Section 2.1 of the paper (the graph data model
and labeled isomorphism) plus the schema-path machinery of Section 3.1.
"""

from repro.graph.canonical import (
    CanonicalForm,
    are_isomorphic,
    canonical_form,
    canonical_form_and_order,
    canonical_key,
    graph_from_canonical,
    parse_canonical_key,
)
from repro.graph.isomorphism import (
    find_embeddings,
    has_subgraph_isomorphism,
    subgraph_isomorphisms,
)
from repro.graph.labeled_graph import LabeledGraph, Path, union_all
from repro.graph.paths import (
    bfs_distances,
    iter_simple_paths,
    pairs_within_distance,
    path_set,
    paths_from_source,
)
from repro.graph.schema_enum import (
    PossibleTopology,
    count_possible_topologies,
    enumerate_possible_topologies,
)
from repro.graph.schema_graph import (
    SchemaEdge,
    SchemaGraph,
    SchemaPath,
    enumerate_schema_paths,
    instantiate_template,
)

__all__ = [
    "CanonicalForm",
    "LabeledGraph",
    "Path",
    "PossibleTopology",
    "SchemaEdge",
    "SchemaGraph",
    "SchemaPath",
    "are_isomorphic",
    "bfs_distances",
    "canonical_form",
    "canonical_form_and_order",
    "canonical_key",
    "count_possible_topologies",
    "enumerate_possible_topologies",
    "enumerate_schema_paths",
    "find_embeddings",
    "graph_from_canonical",
    "has_subgraph_isomorphism",
    "instantiate_template",
    "iter_simple_paths",
    "pairs_within_distance",
    "parse_canonical_key",
    "path_set",
    "paths_from_source",
    "subgraph_isomorphisms",
    "union_all",
]
