"""Trace context and spans.

One :class:`Tracer` per process holds the current :class:`TraceContext`
in a ``contextvars.ContextVar`` (so it follows the request across
``await`` points and, when explicitly copied, into worker threads) and a
bounded ring buffer of finished spans keyed by trace id.

The design mirrors distributed tracers: a trace is *started* at an
ingress span (``ingress=True``); interior spans attach to whatever
context is active and are no-ops otherwise, so library code can
instrument unconditionally without forcing tracing on callers.  Crossing
a process boundary is explicit: the parent serializes the active context
with :func:`current_wire`, the worker installs it with
:meth:`Tracer.adopt`, records spans locally, then drains them with
:meth:`Tracer.take` and ships them back in the reply for the parent's
:meth:`Tracer.ingest`.

Everything is stdlib; disabled tracing costs one attribute read and one
``ContextVar.get`` per ``span()`` entry.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import OrderedDict, deque
from contextvars import ContextVar, Token
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple, Union

__all__ = [
    "NOOP_SPAN",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "current_trace",
    "current_wire",
    "span",
    "tracer",
]

_TRACE_ID_BYTES = 8
_SPAN_ID_BYTES = 4

TRACING_ENV = "REPRO_TRACING"


# IDs come from an in-process PRNG, not os.urandom: urandom is a
# syscall that releases the GIL, and a GIL hand-off in the middle of
# every request costs far more than the span itself under thread
# concurrency.  random.Random.getrandbits is a single C call (atomic
# under the GIL, so the shared instance is thread-safe).  Forked
# children re-seed — the copied PRNG state would otherwise mint
# duplicate span ids and corrupt trace trees.
_rng = random.Random(os.urandom(16))

if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=lambda: _rng.seed(os.urandom(16)))


def _new_trace_id() -> str:
    return "%016x" % _rng.getrandbits(8 * _TRACE_ID_BYTES)


def _new_span_id() -> str:
    return "%08x" % _rng.getrandbits(8 * _SPAN_ID_BYTES)


def _new_ingress_ids() -> Tuple[str, str]:
    """(trace_id, span_id) from a single PRNG draw — the ingress span
    is on every request's critical path."""
    raw = _rng.getrandbits(8 * (_TRACE_ID_BYTES + _SPAN_ID_BYTES))
    return "%016x" % (raw >> 32), "%08x" % (raw & 0xFFFFFFFF)


class TraceContext(NamedTuple):
    """The (trace, active span) pair propagated through a request.

    A ``NamedTuple`` rather than a dataclass: one is built per span on
    the hot path, and tuple construction is several times cheaper."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: Any) -> Optional["TraceContext"]:
        if not isinstance(wire, dict):
            return None
        trace_id = wire.get("trace_id")
        span_id = wire.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class SpanRecord(NamedTuple):
    """A finished span. ``parent_id`` of ``None`` marks a trace root.

    Also a ``NamedTuple`` for cheap construction (one per recorded
    span).  The ``tags`` default is a shared dict — never mutate a
    record's tags in place; span tags are attached via
    :meth:`_ActiveSpan.tag` before the record exists."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_unix: float
    elapsed_seconds: float
    tags: Dict[str, Any] = {}
    error: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "elapsed_seconds": self.elapsed_seconds,
            "tags": dict(self.tags),
        }
        if self.error is not None:
            wire["error"] = self.error
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=wire["trace_id"],
            span_id=wire["span_id"],
            parent_id=wire.get("parent_id"),
            name=wire["name"],
            start_unix=float(wire["start_unix"]),
            elapsed_seconds=float(wire["elapsed_seconds"]),
            tags=dict(wire.get("tags") or {}),
            error=wire.get("error"),
        )


class _NoopSpan:
    """Returned when tracing is off or no trace is active."""

    __slots__ = ()

    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    recording = False

    def tag(self, **tags: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanCM:
    """Class-based context manager that doubles as the open-span handle
    (``__enter__`` returns ``self`` when recording): cheaper than a
    generator, no separate handle allocation, and the no-op path
    allocates nothing beyond this small object."""

    __slots__ = (
        "_tracer", "_name", "_ingress", "_tags",
        "_ctx", "_parent_id", "_token", "_t0", "_start",
        "trace_id", "span_id",
    )

    recording = True

    def __init__(self, tracer: "Tracer", name: str, ingress: bool, tags: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._ingress = ingress
        self._tags = tags
        self._ctx: Optional[TraceContext] = None
        self._token: Optional[Token[Optional[TraceContext]]] = None

    def tag(self, **tags: Any) -> None:
        self._tags.update(tags)

    def __enter__(
        self,
        _time: Callable[[], float] = time.time,
        _perf: Callable[[], float] = time.perf_counter,
    ) -> Union["_SpanCM", _NoopSpan]:
        tracer = self._tracer
        if not tracer.enabled:
            return NOOP_SPAN
        parent = tracer._var.get()
        if parent is None:
            if not self._ingress:
                return NOOP_SPAN
            self._parent_id = None
            ctx = TraceContext(*_new_ingress_ids())
        else:
            self._parent_id = parent.span_id
            ctx = TraceContext(parent.trace_id, _new_span_id())
        self._ctx = ctx
        self.trace_id = ctx.trace_id
        self.span_id = ctx.span_id
        self._token = tracer._var.set(ctx)
        self._start = _time()
        self._t0 = _perf()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: object,
        _perf: Callable[[], float] = time.perf_counter,
    ) -> None:
        ctx = self._ctx
        if ctx is None:
            return
        tracer = self._tracer
        elapsed = _perf() - self._t0
        tracer._var.reset(self._token)
        tracer._pending.append(
            SpanRecord(
                ctx.trace_id,
                ctx.span_id,
                self._parent_id,
                self._name,
                self._start,
                elapsed,
                self._tags,
                None if exc is None else f"{type(exc).__name__}: {exc}",
            )
        )


class _AdoptCM:
    """Install a foreign (cross-process) context for a ``with`` block."""

    __slots__ = ("_tracer", "_ctx", "_token")

    def __init__(self, tracer: "Tracer", ctx: Optional[TraceContext]) -> None:
        self._tracer = tracer
        self._ctx = ctx
        self._token: Optional[Token[Optional[TraceContext]]] = None

    def __enter__(self) -> Optional[TraceContext]:
        if self._ctx is not None:
            self._token = self._tracer._var.set(self._ctx)
        return self._ctx

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        if self._token is not None:
            self._tracer._var.reset(self._token)


class Tracer:
    """Span collector with a bounded ring buffer of recent traces."""

    def __init__(
        self,
        enabled: Optional[bool] = None,
        max_traces: int = 256,
        max_spans_per_trace: int = 512,
    ) -> None:
        if enabled is None:
            enabled = os.environ.get(TRACING_ENV, "1") not in ("0", "false", "off")
        self.enabled = bool(enabled)
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._var: ContextVar[Optional[TraceContext]] = ContextVar(
            "repro_trace", default=None
        )
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[SpanRecord]]" = OrderedDict()
        self._dropped_spans = 0
        self._recorded_spans = 0
        # Finished spans land here first: ``deque.append`` is atomic
        # under the GIL, so the record path never touches ``_lock`` —
        # a contended lock on the request path costs a futex round-trip
        # per span, which dwarfs the span itself.  Readers drain the
        # deque into ``_traces`` (see :meth:`_drain`).  ``maxlen``
        # bounds memory when nothing ever reads; overflow rotates out
        # the oldest spans, which is the ring's eviction policy anyway.
        self._pending: "deque[SpanRecord]" = deque(
            maxlen=max(1024, self.max_traces * 16)
        )

    # -- context -----------------------------------------------------

    def current(self) -> Optional[TraceContext]:
        return self._var.get()

    def current_wire(self) -> Optional[Dict[str, str]]:
        ctx = self._var.get()
        return ctx.to_wire() if (self.enabled and ctx is not None) else None

    def span(self, name: str, ingress: bool = False, **tags: Any) -> _SpanCM:
        return _SpanCM(self, name, ingress, tags)

    def adopt(self, wire: Any) -> _AdoptCM:
        """Context manager installing a context received over the wire.

        ``wire`` of ``None`` (or malformed) yields no context — interior
        spans then no-op, which is exactly the untraced-caller case.
        """
        ctx = TraceContext.from_wire(wire) if self.enabled else None
        return _AdoptCM(self, ctx)

    # -- recording ---------------------------------------------------

    def _record(self, record: SpanRecord) -> None:
        self._pending.append(record)

    def _drain(self) -> None:
        """Move pending spans into the trace ring. Caller holds ``_lock``."""
        pending = self._pending
        traces = self._traces
        while True:
            try:
                record = pending.popleft()
            except IndexError:
                return
            spans = traces.get(record.trace_id)
            if spans is None:
                while len(traces) >= self.max_traces:
                    traces.popitem(last=False)
                spans = []
                traces[record.trace_id] = spans
            if len(spans) >= self.max_spans_per_trace:
                self._dropped_spans += 1
                continue
            spans.append(record)
            self._recorded_spans += 1

    def ingest(self, spans_wire: Any) -> int:
        """Merge spans shipped back from another process. Returns count."""
        if not self.enabled or not spans_wire:
            return 0
        count = 0
        for wire in spans_wire:
            try:
                record = SpanRecord.from_wire(wire)
            except (KeyError, TypeError, ValueError):
                continue
            self._record(record)
            count += 1
        return count

    def take(self, trace_id: Optional[str]) -> List[Dict[str, Any]]:
        """Drain a trace's spans as wire dicts (worker → parent shipping)."""
        if trace_id is None:
            return []
        with self._lock:
            self._drain()
            spans = self._traces.pop(trace_id, None)
        return [s.to_wire() for s in spans] if spans else []

    # -- reading -----------------------------------------------------

    def trace_spans(self, trace_id: str) -> List[SpanRecord]:
        with self._lock:
            self._drain()
            spans = self._traces.get(trace_id)
            return list(spans) if spans else []

    def trace_tree(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """Span tree for one trace: roots with nested ``children``."""
        spans = self.trace_spans(trace_id)
        if not spans:
            return None
        nodes: Dict[str, Dict[str, Any]] = {}
        for record in spans:
            node = record.to_wire()
            node["children"] = []
            nodes[record.span_id] = node
        roots: List[Dict[str, Any]] = []
        for record in sorted(spans, key=lambda s: s.start_unix):
            node = nodes[record.span_id]
            parent = nodes.get(record.parent_id) if record.parent_id else None
            if parent is not None and parent is not node:
                parent["children"].append(node)
            else:
                roots.append(node)
        start = min(s.start_unix for s in spans)
        end = max(s.start_unix + s.elapsed_seconds for s in spans)
        return {
            "trace_id": trace_id,
            "span_count": len(spans),
            "elapsed_seconds": end - start,
            "spans": roots,
        }

    def recent(self, limit: int = 50) -> List[Dict[str, Any]]:
        """Newest-first summaries of buffered traces."""
        with self._lock:
            self._drain()
            items: List[Tuple[str, List[SpanRecord]]] = [
                (tid, list(spans)) for tid, spans in self._traces.items()
            ]
        summaries = []
        for trace_id, spans in reversed(items[-limit:] if limit else items):
            if not spans:
                continue
            root = next((s for s in spans if s.parent_id is None), spans[0])
            start = min(s.start_unix for s in spans)
            end = max(s.start_unix + s.elapsed_seconds for s in spans)
            summaries.append(
                {
                    "trace_id": trace_id,
                    "root": root.name,
                    "span_count": len(spans),
                    "start_unix": start,
                    "elapsed_seconds": end - start,
                }
            )
        return summaries

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            self._drain()
            return {
                "enabled": self.enabled,
                "traces": len(self._traces),
                "spans_recorded": self._recorded_spans,
                "spans_dropped": self._dropped_spans,
            }

    def reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._traces.clear()
            self._dropped_spans = 0
            self._recorded_spans = 0


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, ingress: bool = False, **tags: Any) -> _SpanCM:
    """Open a span on the process tracer (see :meth:`Tracer.span`)."""
    return _SpanCM(_TRACER, name, ingress, tags)


def current_trace() -> Optional[TraceContext]:
    return _TRACER.current()


def current_wire() -> Optional[Dict[str, str]]:
    return _TRACER.current_wire()
