"""Observability: trace context + spans, metrics registry, slow-query log.

Stdlib-only. Nothing in this package imports from the rest of ``repro``,
so every layer (core engine, parallel build, shard split, serving) can
instrument itself without creating import cycles.
"""

from .metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    bucket_index,
    prom_name,
    registry,
)
from .slowlog import (
    SLOW_QUERY_LOGGER,
    SlowQueryLog,
    default_slow_query_seconds,
    query_summary,
)
from .trace import (
    NOOP_SPAN,
    SpanRecord,
    TraceContext,
    Tracer,
    current_trace,
    current_wire,
    span,
    tracer,
)

__all__ = [
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SLOW_QUERY_LOGGER",
    "SlowQueryLog",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "bucket_index",
    "current_trace",
    "current_wire",
    "default_slow_query_seconds",
    "prom_name",
    "query_summary",
    "registry",
    "span",
    "tracer",
]
