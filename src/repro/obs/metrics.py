"""Unified metrics registry with Prometheus text exposition.

One process-wide :class:`MetricsRegistry` owns every metric behind a
stable dotted name (``repro.http.requests``); rendering converts dots to
underscores for the Prometheus name charset.  Each metric carries its
own lock and is snapshotted in a single acquisition — the same
torn-read discipline `/stats` follows — and *collectors* let a scrape
derive many samples from one consistent source snapshot instead of
locking many components one by one.

Only stdlib; histogram buckets are fixed at registration (bounded
memory, O(#buckets) per observe).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "bucket_index",
    "prom_name",
    "registry",
]

#: Latency bucket upper bounds in seconds, shared with
#: ``LatencyStats`` so `/metrics` histograms and `/stats` buckets agree.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

# A sample is (suffix-less metric name, labels, value).
Sample = Tuple[str, Dict[str, str], float]

_LabelKey = Tuple[Tuple[str, str], ...]


def bucket_index(bounds: Sequence[float], value: float) -> int:
    """Index of the first bucket whose upper bound holds ``value``;
    ``len(bounds)`` means the implicit +Inf bucket."""
    return bisect_left(bounds, value)


def prom_name(dotted: str) -> str:
    """``repro.http.requests`` → ``repro_http_requests``."""
    out = []
    for ch in dotted:
        if ch.isalnum() or ch == "_" or ch == ":":
            out.append(ch)
        else:
            out.append("_")
    name = "".join(out)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Base: name, help text, per-metric lock, labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def samples(self) -> List[Sample]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def samples(self) -> List[Sample]:
        with self._lock:
            items = list(self._values.items())
        if not items:
            return [(self.name, {}, 0.0)]
        return [(self.name, dict(key), value) for key, value in items]


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def samples(self) -> List[Sample]:
        with self._lock:
            items = list(self._values.items())
        if not items:
            return [(self.name, {}, 0.0)]
        return [(self.name, dict(key), value) for key, value in items]


class Histogram(_Metric):
    """Fixed-bound histogram exporting cumulative ``_bucket``/``_sum``/
    ``_count`` series, Prometheus-style."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts: Dict[_LabelKey, List[int]] = {}
        self._sums: Dict[_LabelKey, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        index = bucket_index(self.bounds, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
                self._counts[key] = counts
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def samples(self) -> List[Sample]:
        with self._lock:
            items = [
                (key, list(counts), self._sums.get(key, 0.0))
                for key, counts in self._counts.items()
            ]
        if not items:
            items = [((), [0] * (len(self.bounds) + 1), 0.0)]
        out: List[Sample] = []
        for key, counts, total in items:
            labels = dict(key)
            running = 0
            for bound, count in zip(self.bounds, counts):
                running += count
                out.append(
                    (self.name + "_bucket", {**labels, "le": _format_value(bound)}, float(running))
                )
            running += counts[-1]
            out.append((self.name + "_bucket", {**labels, "le": "+Inf"}, float(running)))
            out.append((self.name + "_sum", labels, total))
            out.append((self.name + "_count", labels, float(running)))
        return out


class MetricsRegistry:
    """Process-wide registry: get-or-create metrics, pluggable
    collectors, and a single :meth:`render` to Prometheus text."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._collectors: List[Callable[[], Iterable[Tuple[str, str, str, Sample]]]] = []

    # -- registration ------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, help_text: str, **kwargs: Any
    ) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def add_collector(
        self, fn: Callable[[], Iterable[Tuple[str, str, str, Sample]]]
    ) -> None:
        """Register a scrape-time callback yielding
        ``(name, kind, help, sample)`` tuples derived from one
        consistent snapshot of some component."""
        with self._lock:
            self._collectors.append(fn)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()

    # -- rendering ---------------------------------------------------

    def gather(self) -> "List[Tuple[str, str, str, List[Sample]]]":
        """All families as ``(dotted_name, kind, help, samples)``."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        families: Dict[str, Tuple[str, str, List[Sample]]] = {}
        for metric in metrics:
            families[metric.name] = (metric.kind, metric.help, metric.samples())
        for collect in collectors:
            for name, kind, help_text, sample in collect():
                kind0, help0, samples = families.setdefault(name, (kind, help_text, []))
                samples.append(sample)
        return [
            (name, kind, help_text, samples)
            for name, (kind, help_text, samples) in sorted(families.items())
        ]

    def render(
        self, extra_families: Optional[Iterable[Tuple[str, str, str, Any]]] = None
    ) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: List[str] = []
        families = self.gather()
        if extra_families:
            families = families + list(extra_families)
        seen: set = set()
        for dotted, kind, help_text, samples in families:
            base = prom_name(dotted)
            if base in seen:
                continue
            seen.add(base)
            if help_text:
                lines.append(f"# HELP {base} {help_text}")
            lines.append(f"# TYPE {base} {kind}")
            for sample_name, labels, value in samples:
                name = prom_name(sample_name)
                if labels:
                    body = ",".join(
                        f'{prom_name(k)}="{_escape_label(str(v))}"'
                        for k, v in sorted(labels.items())
                    )
                    lines.append(f"{name}{{{body}}} {_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY
