"""Slow-query log: one structured record per over-threshold query.

Each record joins against traces (trace_id), request logs (same id), and
the plan layer (chosen plan + calibrator version), so a mispicked plan
is diagnosable from logs alone.  Records are JSON on the
``repro.slowquery`` logger and kept in a small ring for tests and
debugging endpoints.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

__all__ = [
    "SLOW_QUERY_LOGGER",
    "SlowQueryLog",
    "default_slow_query_seconds",
    "query_summary",
]


def query_summary(query: Any) -> Dict[str, Any]:
    """Structured summary of a ``TopologyQuery`` for slow-query records
    (duck-typed so this package stays import-free of the core)."""
    return {
        "entity1": getattr(query, "entity1", None),
        "entity2": getattr(query, "entity2", None),
        "max_length": getattr(query, "max_length", None),
        "k": getattr(query, "k", None),
        "ranking": getattr(query, "ranking", None),
    }

SLOW_QUERY_LOGGER = "repro.slowquery"

THRESHOLD_ENV = "REPRO_SLOW_QUERY_SECONDS"

_DEFAULT_THRESHOLD_SECONDS = 1.0


def default_slow_query_seconds() -> float:
    """Threshold from ``REPRO_SLOW_QUERY_SECONDS`` (seconds), default 1.0."""
    raw = os.environ.get(THRESHOLD_ENV)
    if raw is None:
        return _DEFAULT_THRESHOLD_SECONDS
    try:
        value = float(raw)
    except ValueError:
        return _DEFAULT_THRESHOLD_SECONDS
    return value if value >= 0 else _DEFAULT_THRESHOLD_SECONDS


class SlowQueryLog:
    """Emit one structured record per query slower than the threshold."""

    def __init__(
        self,
        threshold_seconds: Optional[float] = None,
        source: str = "server",
        keep: int = 64,
        logger: Optional[logging.Logger] = None,
    ) -> None:
        if threshold_seconds is None:
            threshold_seconds = default_slow_query_seconds()
        self.threshold_seconds = float(threshold_seconds)
        self.source = source
        self._logger = logger or logging.getLogger(SLOW_QUERY_LOGGER)
        self._lock = threading.Lock()
        self._recent: Deque[Dict[str, Any]] = deque(maxlen=keep)
        self._emitted = 0

    def maybe_record(
        self,
        *,
        elapsed_seconds: float,
        method: str,
        query: Dict[str, Any],
        generation: Any,
        trace_id: Optional[str] = None,
        plan: Optional[Dict[str, Any]] = None,
        calibrator_version: Optional[int] = None,
        spans: Optional[Iterable[Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Record if over threshold; returns the record or ``None``."""
        if elapsed_seconds < self.threshold_seconds:
            return None
        breakdown: List[Dict[str, Any]] = []
        if spans:
            for span in spans:
                wire = span.to_wire() if hasattr(span, "to_wire") else dict(span)
                breakdown.append(
                    {
                        "name": wire.get("name"),
                        "span_id": wire.get("span_id"),
                        "parent_id": wire.get("parent_id"),
                        "elapsed_seconds": wire.get("elapsed_seconds"),
                    }
                )
        record: Dict[str, Any] = {
            "event": "slow_query",
            "source": self.source,
            "trace_id": trace_id,
            "method": method,
            "query": dict(query),
            "elapsed_seconds": elapsed_seconds,
            "threshold_seconds": self.threshold_seconds,
            "plan": dict(plan) if plan else None,
            "calibrator_version": calibrator_version,
            "generation": generation,
            "spans": breakdown,
        }
        with self._lock:
            self._recent.append(record)
            self._emitted += 1
        self._logger.warning(json.dumps(record, sort_keys=True, default=str))
        return record

    def recent(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._recent)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "emitted": self._emitted,
            }
