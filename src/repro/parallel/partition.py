"""Deterministic hash partitioning of the entity-pair space.

The offline phase's outer loop runs over *source* entities (the left
entity set of each requested pair); the partitioned build splits that
loop into ``num_partitions`` disjoint buckets by hashing the source's
node id.  The hash must be:

* **process-stable** — Python's builtin ``hash`` is salted per process
  for ``str``/``bytes`` (PYTHONHASHSEED), so workers and the merging
  parent would disagree about bucket membership.  We use CRC-32 over a
  canonical byte encoding instead;
* **type-discriminating** — the ids ``1`` and ``"1"`` are different
  nodes and must be free to land in different buckets, so the encoding
  is prefixed with a type tag.

Partitioning is over node ids only (never over path contents), so a
bucket can be assigned before any path enumeration happens — workers
skip foreign sources with one CRC each.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.graph.labeled_graph import NodeId


def _canonical_bytes(node_id: NodeId) -> bytes:
    """A stable byte encoding of a node id, tagged by type."""
    if isinstance(node_id, bool):  # bool is an int subclass; tag first
        return b"b:1" if node_id else b"b:0"
    if isinstance(node_id, int):
        return b"i:" + str(node_id).encode("ascii")
    if isinstance(node_id, str):
        return b"s:" + node_id.encode("utf-8")
    if isinstance(node_id, bytes):
        return b"y:" + node_id
    # Tuples of the above (composite keys) and anything else with a
    # stable repr fall back to the tagged repr.
    return b"r:" + repr(node_id).encode("utf-8")


def stable_partition(node_id: NodeId, num_partitions: int) -> int:
    """Bucket index in ``[0, num_partitions)`` for a node id; identical
    in every process and on every run."""
    if num_partitions < 1:
        raise TopologyError(f"num_partitions must be >= 1, got {num_partitions}")
    if num_partitions == 1:
        return 0
    return zlib.crc32(_canonical_bytes(node_id)) % num_partitions


def partition_sources(
    sources: Sequence[NodeId], num_partitions: int
) -> Dict[int, List[NodeId]]:
    """Split a source list into buckets, preserving the input order
    inside each bucket (the order the merge will replay)."""
    buckets: Dict[int, List[NodeId]] = {p: [] for p in range(num_partitions)}
    for node_id in sources:
        buckets[stable_partition(node_id, num_partitions)].append(node_id)
    return buckets


def partition_histogram(
    sources: Sequence[NodeId], num_partitions: int
) -> Tuple[int, ...]:
    """Bucket sizes — a quick skew check for choosing partition counts."""
    counts = [0] * num_partitions
    for node_id in sources:
        counts[stable_partition(node_id, num_partitions)] += 1
    return tuple(counts)


def histogram_skew(counts: Sequence[int]) -> float:
    """Max bucket over mean bucket (1.0 = perfectly balanced).

    The load-balance figure of merit for both the partitioned build and
    the sharded store: scatter-gather latency is the *slowest* bucket,
    so a skew of S means fan-out buys at most ``num_buckets / S`` of its
    nominal speedup.  An empty or all-empty histogram reports 1.0."""
    if not counts:
        return 1.0
    mean = sum(counts) / len(counts)
    if mean <= 0:
        return 1.0
    return max(counts) / mean
