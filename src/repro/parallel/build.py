"""Partitioned multi-process offline build: pool fan-out + serial merge.

:func:`compute_alltops_parallel` is the bulk-build counterpart of
:func:`repro.core.alltops.compute_alltops`:

1. **Partition** — the source-entity space of every requested entity
   pair is split into ``partitions`` deterministic hash buckets
   (:mod:`repro.parallel.partition`); one task = one (pair, bucket).
2. **Fan out** — a ``multiprocessing`` pool runs
   :func:`repro.parallel.worker.run_partition` over the tasks.  The
   graph and build parameters ship **once per worker** via the pool
   initializer, so task dispatch carries only two integers.  Tasks are
   consumed unordered — scheduling jitter cannot affect the result.
3. **Merge** — the parent replays every worker record through the
   store in *serial order* (pair list order, then graph insertion
   order of sources), so TID interning, ``AllTops`` row order, and all
   derived state come out **bit-identical** to a single-process build
   (``TopologyStore.state_digest()`` equality; the property tests
   assert it for multiple worker/partition combinations).

The merge is sequential and cheap (no path enumeration, no
canonicalization — just dict replay); its cost is reported separately
so benchmarks can track merge overhead against fan-out gains.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.alltops import (
    AllTopsReport,
    nodes_by_type,
    replay_source_records,
    validate_entity_pairs,
)
from repro.core.store import TopologyStore
from repro.core.topologies import DEFAULT_COMBINATION_CAP
from repro.errors import TopologyError
from repro.obs import span as obs_span
from repro.parallel.partition import stable_partition
from repro.parallel.worker import (
    BuildContext,
    PartitionResult,
    clear_context,
    init_worker,
    install_context,
    make_payload,
    run_partition,
)

# Oversubscribe partitions relative to workers by default: more, smaller
# tasks smooth out skew (weak-relationship hot spots concentrate work in
# a few sources) at negligible dispatch cost.
DEFAULT_PARTITIONS_PER_WORKER = 4


@dataclass
class TaskTiming:
    """Wall-clock and volume of one (pair, partition) task."""

    pair_index: int
    partition_index: int
    sources_scanned: int
    pairs_related: int
    elapsed_seconds: float


@dataclass
class ParallelBuildReport:
    """What the partitioned build did, for BuildReport and benchmarks."""

    workers: int
    partitions: int
    start_method: str
    tasks: List[TaskTiming] = field(default_factory=list)
    pool_seconds: float = 0.0
    merge_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def worker_seconds_total(self) -> float:
        """Sum of in-task wall-clock across all tasks (the work that
        actually fans out; compare with ``pool_seconds`` for overhead)."""
        return sum(t.elapsed_seconds for t in self.tasks)

    @property
    def slowest_task_seconds(self) -> float:
        return max((t.elapsed_seconds for t in self.tasks), default=0.0)

    def partition_skew(self) -> float:
        """Slowest task over mean task time (1.0 = perfectly balanced)."""
        if not self.tasks:
            return 1.0
        mean = self.worker_seconds_total / len(self.tasks)
        return self.slowest_task_seconds / mean if mean > 0 else 1.0

    def partition_row_histogram(self) -> Tuple[int, ...]:
        """Related-pair rows produced per partition (summed over entity
        pairs) — the data-volume counterpart of the time-based
        :meth:`partition_skew`, and the number that predicts how evenly
        a same-bucket *shard* split (:mod:`repro.shard`) will land."""
        counts = [0] * self.partitions
        for task in self.tasks:
            counts[task.partition_index] += task.pairs_related
        return tuple(counts)

    def partition_row_skew(self) -> float:
        """Max/mean of :meth:`partition_row_histogram` (1.0 = balanced)."""
        from repro.parallel.partition import histogram_skew

        return histogram_skew(self.partition_row_histogram())


def _pick_start_method(requested: Optional[str]) -> str:
    """``fork`` where available (cheap, the graph is shared copy-on-write
    until pickled), otherwise ``spawn``; explicit requests win."""
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise TopologyError(
                f"start method {requested!r} not available; "
                f"choose from {available}"
            )
        return requested
    return "fork" if "fork" in available else "spawn"


def compute_alltops_parallel(
    graph,
    entity_pairs: Sequence[Tuple[str, str]],
    max_length: int,
    workers: int,
    partitions: Optional[int] = None,
    store: Optional[TopologyStore] = None,
    combination_cap: int = DEFAULT_COMBINATION_CAP,
    per_pair_path_limit: Optional[int] = None,
    start_method: Optional[str] = None,
) -> Tuple[TopologyStore, AllTopsReport, ParallelBuildReport]:
    """Partitioned, multi-process equivalent of ``compute_alltops``.

    Returns the same ``(store, report)`` pair plus a
    :class:`ParallelBuildReport`.  The store is bit-identical to what
    the serial function produces for the same inputs (see module
    docstring).  ``workers=1`` still goes through the pool + merge
    machinery (useful for overhead measurements); use the serial
    function directly when no pool is wanted.
    """
    if workers < 1:
        raise TopologyError(f"workers must be >= 1, got {workers}")
    validate_entity_pairs(entity_pairs)
    if partitions is None:
        partitions = workers * DEFAULT_PARTITIONS_PER_WORKER
    if partitions < 1:
        raise TopologyError(f"partitions must be >= 1, got {partitions}")

    if store is None:
        store = TopologyStore()
    report = AllTopsReport(tuple(entity_pairs), max_length)
    method = _pick_start_method(start_method)
    parallel_report = ParallelBuildReport(
        workers=workers, partitions=partitions, start_method=method
    )
    start = time.perf_counter()

    build_context = BuildContext(
        graph=graph,
        entity_pairs=tuple((es1, es2) for es1, es2 in entity_pairs),
        max_length=max_length,
        combination_cap=combination_cap,
        per_pair_path_limit=per_pair_path_limit,
        num_partitions=partitions,
    )
    tasks = [
        (pair_index, partition_index)
        for pair_index in range(len(entity_pairs))
        for partition_index in range(partitions)
    ]

    # The type index serves three consumers: forked workers (inherited
    # below), the merge loop, and the completeness check — one pass.
    by_type = nodes_by_type(graph)

    # Under fork, install the context in the parent so children inherit
    # the graph copy-on-write — no pickling at all.  Spawned workers
    # can't inherit memory, so they get one pickled payload each.
    if method == "fork":
        install_context(build_context, by_type)
        initargs: Tuple[Optional[bytes]] = (None,)
    else:
        initargs = (make_payload(build_context),)

    results: Dict[Tuple[int, int], PartitionResult] = {}
    context = multiprocessing.get_context(method)
    pool_start = time.perf_counter()
    try:
        with obs_span(
            "build.fanout",
            workers=workers,
            partitions=partitions,
            start_method=method,
        ), context.Pool(
            processes=workers, initializer=init_worker, initargs=initargs
        ) as pool:
            # Unordered consumption: the merge below imposes its own
            # order, so nothing here depends on completion order.
            for result in pool.imap_unordered(run_partition, tasks):
                results[(result.pair_index, result.partition_index)] = result
                parallel_report.tasks.append(
                    TaskTiming(
                        pair_index=result.pair_index,
                        partition_index=result.partition_index,
                        sources_scanned=result.sources_scanned,
                        pairs_related=result.pairs_related,
                        elapsed_seconds=result.elapsed_seconds,
                    )
                )
    finally:
        if method == "fork":
            clear_context()
    parallel_report.pool_seconds = time.perf_counter() - pool_start

    # Serial-order merge: pair list order, then graph insertion order.
    # Looking each source up in its owning bucket's result replays the
    # exact record sequence the serial loop would have produced.
    merge_start = time.perf_counter()
    with obs_span("build.merge", tasks=len(tasks)):
        for pair_index, (es1, es2) in enumerate(entity_pairs):
            for source in by_type.get(es1, []):
                bucket = stable_partition(source, partitions)
                result = results.get((pair_index, bucket))
                if result is None:  # pragma: no cover - pool must yield all
                    raise TopologyError(
                        f"partition task ({pair_index}, {bucket}) never returned"
                    )
                records = result.records.get(source)
                if records:
                    replay_source_records(
                        store, report, source, (es1, es2), records
                    )
        # Completeness check: every pair a worker related must have been
        # replayed.  Node ids that don't survive the worker round-trip —
        # identity-equality objects, or types whose repr differs across
        # processes (see partition._canonical_bytes's fallback) — would
        # otherwise vanish from the store silently.
        produced = sum(r.pairs_related for r in results.values())
        if report.pairs_related != produced:
            raise TopologyError(
                f"partitioned merge replayed {report.pairs_related} related "
                f"pairs but workers produced {produced}; node ids must "
                f"round-trip pickling with value equality (int/str/bytes/"
                f"tuples thereof) to be partitionable"
            )
        store.finalize()
    parallel_report.merge_seconds = time.perf_counter() - merge_start

    report.distinct_topologies = len(store.topologies)
    report.truncated_pairs = store.truncated_pairs
    report.elapsed_seconds = time.perf_counter() - start
    parallel_report.elapsed_seconds = report.elapsed_seconds
    return store, report, parallel_report
