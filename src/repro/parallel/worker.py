"""Worker-process side of the partitioned offline build.

Each worker receives the build context **once** — inherited
copy-on-write under the ``fork`` start method (the parent installs it
before the pool starts; no pickling at all), or as a single pickled
payload through the pool initializer under ``spawn`` — and then
executes many small partition tasks against that shared state.  Tasks
themselves carry only ``(pair_index, partition_index)``, so task
dispatch stays cheap no matter how large the graph is.

Workers are pure functions of (context, task): they never touch a
:class:`~repro.core.store.TopologyStore` and never intern TIDs.  They
return plain :class:`~repro.core.alltops.PairRecord` data, and the
parent merges those records in serial order
(:mod:`repro.parallel.build`), which is what keeps the merged store
bit-identical to a single-process build.

Everything here must stay importable at module top level: under the
``spawn`` start method (macOS/Windows default) the pool re-imports this
module in each worker and resolves :func:`init_worker` /
:func:`run_partition` by qualified name.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.alltops import PairRecord, nodes_by_type, pair_source_records
from repro.graph.labeled_graph import LabeledGraph, NodeId
from repro.parallel.partition import stable_partition

# Per-process build context, installed by init_worker.  A plain module
# global: multiprocessing gives every worker its own module instance.
_CONTEXT: Dict[str, object] = {}


@dataclass(frozen=True)
class BuildContext:
    """Everything a worker needs, shipped once per worker."""

    graph: LabeledGraph
    entity_pairs: Tuple[Tuple[str, str], ...]
    max_length: int
    combination_cap: int
    per_pair_path_limit: Optional[int]
    num_partitions: int


@dataclass(frozen=True)
class PartitionResult:
    """One task's output: the records of every source in the bucket.

    ``records`` maps source node id -> its :class:`PairRecord` list in
    the source's local enumeration order; sources appear in graph
    insertion order (the worker walks the shared type index), though
    the merge re-derives the global order itself and only ever looks
    buckets up by source id.
    """

    pair_index: int
    partition_index: int
    records: Dict[NodeId, List[PairRecord]]
    sources_scanned: int
    pairs_related: int
    elapsed_seconds: float


def make_payload(context: BuildContext) -> bytes:
    """Pickle the build context once in the parent.  Only the ``spawn``
    start method pays this cost (plus one unpickle per worker); under
    ``fork`` the context is installed in the parent before the pool
    starts and children inherit it copy-on-write, pickle-free."""
    return pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)


def install_context(
    context: BuildContext,
    by_type: Optional[Dict[str, List[NodeId]]] = None,
) -> None:
    """Install the build context in this process.

    Called either from a worker initializer (``spawn``) or — for the
    ``fork`` start method — in the *parent* immediately before the pool
    is created, so every forked child inherits the graph and the type
    index without any serialization.  The parent must call
    :func:`clear_context` once the pool is done.  ``by_type`` lets a
    caller that already holds the type index share it instead of paying
    another full-graph pass."""
    _CONTEXT["context"] = context
    # The type index is shared by every task this worker runs; build it
    # once per process (or once pre-fork) rather than once per task.
    _CONTEXT["by_type"] = (
        by_type if by_type is not None else nodes_by_type(context.graph)
    )


def clear_context() -> None:
    """Drop the installed context (parent-side cleanup after a fork
    pool; harmless if nothing is installed)."""
    _CONTEXT.clear()


def init_worker(payload: Optional[bytes] = None) -> None:
    """Pool initializer.  ``payload=None`` means the context was
    inherited via fork; bytes mean unpickle-and-install (spawn)."""
    if payload is None:
        if "context" not in _CONTEXT:  # pragma: no cover - misuse guard
            raise RuntimeError(
                "forked worker started without an installed build context"
            )
        return
    install_context(pickle.loads(payload))


def run_partition(task: Tuple[int, int]) -> PartitionResult:
    """Execute one (entity pair, partition) task in this worker."""
    pair_index, partition_index = task
    context: BuildContext = _CONTEXT["context"]  # type: ignore[assignment]
    by_type: Dict[str, List[NodeId]] = _CONTEXT["by_type"]  # type: ignore[assignment]
    es1, es2 = context.entity_pairs[pair_index]
    start = time.perf_counter()
    records: Dict[NodeId, List[PairRecord]] = {}
    sources_scanned = 0
    pairs_related = 0
    for source in by_type.get(es1, []):
        if stable_partition(source, context.num_partitions) != partition_index:
            continue
        sources_scanned += 1
        source_records = pair_source_records(
            context.graph,
            source,
            (es1, es2),
            context.max_length,
            combination_cap=context.combination_cap,
            per_pair_path_limit=context.per_pair_path_limit,
        )
        if source_records:
            records[source] = source_records
            pairs_related += len(source_records)
    return PartitionResult(
        pair_index=pair_index,
        partition_index=partition_index,
        records=records,
        sources_scanned=sources_scanned,
        pairs_related=pairs_related,
        elapsed_seconds=time.perf_counter() - start,
    )
