"""Partitioned, multi-process offline build pipeline.

The paper's offline phase (topology computation → pruning →
materialization, Figure 10) is the cost that dominates operation at
Biozon scale (28M objects / 9.6M relationships).  This package makes
the computation step scale with cores while guaranteeing the output is
**bit-identical** to a single-process build:

>>> report = system.build([("Protein", "DNA")], parallel=4)
>>> report.parallel.workers, report.parallel.merge_seconds
(4, ...)

or, below the engine facade:

>>> from repro.parallel import compute_alltops_parallel
>>> store, report, preport = compute_alltops_parallel(
...     graph, [("Protein", "DNA")], max_length=3, workers=4)

Module tour: :mod:`~repro.parallel.partition` (deterministic hash
buckets over source node ids), :mod:`~repro.parallel.worker` (the
per-process task runner; context shipped once via the pool
initializer), :mod:`~repro.parallel.build` (fan-out + serial-order
merge).  ``docs/OFFLINE_PIPELINE.md`` walks through the whole offline
story stage by stage.
"""

from repro.parallel.build import (
    DEFAULT_PARTITIONS_PER_WORKER,
    ParallelBuildReport,
    TaskTiming,
    compute_alltops_parallel,
)
from repro.parallel.partition import (
    histogram_skew,
    partition_histogram,
    partition_sources,
    stable_partition,
)

__all__ = [
    "DEFAULT_PARTITIONS_PER_WORKER",
    "ParallelBuildReport",
    "TaskTiming",
    "compute_alltops_parallel",
    "histogram_skew",
    "partition_histogram",
    "partition_sources",
    "stable_partition",
]
