"""Warm replica processes for CPU-parallel query fan-out.

On a stock (GIL) interpreter, threads interleave pure-Python engine
executions instead of running them in parallel — a thread pool gives
concurrency (overlap, fairness, single-flight) but not *speedup*.  This
module supplies the speedup path used by
``TopologyServer.query_many(mode="process")``: a pool of worker
processes, each holding its own full replica of the serving generation,
restored once per worker from a snapshot written at pool start.

The economics mirror :mod:`repro.parallel` (the offline-phase pool):
pay a one-time per-worker cost — process start plus snapshot restore —
then dispatch cheap work items.  A work item is one plan-class-grouped
chunk of a batch; the reply carries full
:class:`~repro.core.methods.MethodResult` objects (queries, results and
plans all pickle cleanly: they are frozen/plain dataclasses over
builtins).

Replicas are *read-only copies*: they never see the parent's caches or
calibrator, and a generation hot-swap on the parent makes the pool
stale — ``TopologyServer`` tags the pool with the generation it was
built from and replaces it after a swap.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import tempfile
from typing import List, Optional, Sequence, Tuple

from repro.core.methods import MethodResult
from repro.core.query import TopologyQuery
from repro.errors import TopologyError

# Per-process replica installed by the pool initializer.  Module-level
# global: multiprocessing gives every worker its own module instance.
_REPLICA = None


def _init_replica(snapshot_path: str) -> None:
    """Pool initializer: restore this worker's private replica."""
    global _REPLICA
    from repro.persist import load_system

    _REPLICA = load_system(snapshot_path)


def _run_chunk(
    chunk: Tuple[str, Sequence[Tuple[int, TopologyQuery]]]
) -> List[Tuple[int, MethodResult]]:
    """Execute one (method, [(batch index, query), ...]) chunk against
    this worker's replica, preserving the indices for reassembly."""
    if _REPLICA is None:  # pragma: no cover - initializer always ran
        raise TopologyError("replica worker used before initialization")
    method, items = chunk
    return [(index, _REPLICA.search(query, method=method)) for index, query in items]


def _spawn_safe_main() -> bool:
    """Whether ``spawn`` children can bootstrap here.

    Spawned children re-import ``__main__`` when it came from a file;
    if that "file" does not exist on disk (a stdin script, a frozen
    shell), every worker crashes on import and ``multiprocessing.Pool``
    respawns them forever — the pool hangs instead of failing.  A
    file-less ``__main__`` (``python -c``, an interactive REPL,
    embedded interpreters) is fine: the bootstrap skips the re-import."""
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    return path is None or os.path.exists(path)


def _pick_start_method(requested: Optional[str]) -> str:
    """``spawn`` where it can bootstrap, else ``fork``; requests win.

    The pool is started from inside a deliberately multi-threaded
    server: forking while query threads hold arbitrary locks (the
    import lock included — the engine lazily imports on its hot path)
    can hand a child a lock no thread will ever release, deadlocking
    its initializer.  ``spawn`` starts clean children that restore the
    replica from the snapshot file — a one-time cost per worker on a
    *warm* pool — so it is the default whenever the interpreter's
    ``__main__`` is spawn-bootstrappable (see :func:`_spawn_safe_main`);
    otherwise ``fork`` is the only working option and the caller should
    keep the server quiet while the pool starts."""
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise TopologyError(
                f"start method {requested!r} not available; choose from {available}"
            )
        return requested
    if "spawn" in available and _spawn_safe_main():
        return "spawn"
    if "fork" in available:
        return "fork"
    raise TopologyError(
        "process mode needs a spawn-bootstrappable __main__ "
        "(run from an importable script) on this platform"
    )


class ReplicaPool:
    """A warm pool of replica processes serving one generation.

    Construction snapshots ``system`` to a temporary file and starts
    ``workers`` processes, each restoring the snapshot into a private
    replica.  :meth:`run` then dispatches pre-chunked work; results
    stream back in completion order.  :meth:`close` tears the pool down
    and removes the snapshot file."""

    def __init__(
        self,
        system,
        workers: int,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise TopologyError(f"replica workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = _pick_start_method(start_method)
        fd, self._snapshot_path = tempfile.mkstemp(
            prefix="topology-replica-", suffix=".topo"
        )
        os.close(fd)
        self._pool = None
        try:
            system.save(self._snapshot_path)
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=workers,
                initializer=_init_replica,
                initargs=(self._snapshot_path,),
            )
        except BaseException:
            self.close()
            raise

    def run(
        self, chunks: Sequence[Tuple[str, Sequence[Tuple[int, TopologyQuery]]]]
    ) -> List[List[Tuple[int, MethodResult]]]:
        """Execute every chunk; replies arrive in completion order (each
        reply keeps its items' batch indices)."""
        if self._pool is None:
            raise TopologyError("replica pool is closed")
        return list(self._pool.imap_unordered(_run_chunk, chunks))

    def close(self) -> None:
        """Stop the workers and delete the snapshot file (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        if self._snapshot_path and os.path.exists(self._snapshot_path):
            try:
                os.remove(self._snapshot_path)
            except OSError:  # pragma: no cover - best effort cleanup
                pass
        self._snapshot_path = ""

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
