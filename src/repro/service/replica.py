"""Warm replica processes for CPU-parallel query fan-out.

On a stock (GIL) interpreter, threads interleave pure-Python engine
executions instead of running them in parallel — a thread pool gives
concurrency (overlap, fairness, single-flight) but not *speedup*.  This
module supplies the speedup path used by
``TopologyServer.query_many(mode="process")``: a pool of worker
processes, each holding its own full replica of the serving generation,
restored once per worker from a snapshot written at pool start.

The economics mirror :mod:`repro.parallel` (the offline-phase pool):
pay a one-time per-worker cost — process start plus snapshot restore —
then dispatch cheap work items.  A work item is one plan-class-grouped
chunk of a batch; the reply carries full
:class:`~repro.core.methods.MethodResult` objects (queries, results and
plans all pickle cleanly: they are frozen/plain dataclasses over
builtins).

Replicas are *read-only copies*: they never see the parent's caches or
calibrator, and a generation hot-swap on the parent makes the pool
stale — ``TopologyServer`` tags the pool with the generation it was
built from and replaces it after a swap.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import tempfile
import time
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.methods import MethodResult
from repro.core.query import TopologyQuery
from repro.errors import ReproError, ShardUnavailableError, TopologyError
from repro.obs import current_wire as obs_current_wire
from repro.obs import span as obs_span
from repro.obs import tracer as obs_tracer

# Per-process replica installed by the pool initializer.  Module-level
# globals: multiprocessing gives every worker its own module instance.
_REPLICA = None
# Generation the replica was restored from, as attested by the *parent*
# at pool construction.  Every reply carries it back, so a reply from a
# worker that somehow outlived its pool's generation is detectable at
# the consumer instead of silently merging stale answers.
_REPLICA_GENERATION: Optional[int] = None


def _init_replica(snapshot_path: str, generation: Optional[int] = None) -> None:
    """Pool initializer: restore this worker's private replica."""
    global _REPLICA, _REPLICA_GENERATION
    from repro.persist import load_system

    _REPLICA = load_system(snapshot_path)
    _REPLICA_GENERATION = generation
    # Forked workers inherit the parent's span buffer; drop it so a
    # worker only ever ships spans it recorded itself.
    obs_tracer().reset()


def _run_chunk(
    chunk: Tuple[str, Sequence[Tuple[int, TopologyQuery]], Optional[dict]]
) -> Tuple[Optional[int], List[Tuple[int, MethodResult]], List[dict]]:
    """Execute one (method, [(batch index, query), ...], trace wire)
    chunk against this worker's replica, preserving the indices for
    reassembly.  The reply leads with the worker's attested generation
    and trails with the spans recorded here (the parent ingests them
    into its own trace buffer — the trace crosses the process boundary
    through the reply, not through shared memory)."""
    if _REPLICA is None:  # pragma: no cover - initializer always ran
        raise TopologyError("replica worker used before initialization")
    method, items, trace = chunk
    tracer = obs_tracer()
    with tracer.adopt(trace) as ctx:
        with obs_span("replica.chunk", method=method, items=len(items), pid=os.getpid()):
            results = [
                (index, _REPLICA.search(query, method=method))
                for index, query in items
            ]
    spans = tracer.take(ctx.trace_id) if ctx is not None else []
    return _REPLICA_GENERATION, results, spans


def _spawn_safe_main() -> bool:
    """Whether ``spawn`` children can bootstrap here.

    Spawned children re-import ``__main__`` when it came from a file;
    if that "file" does not exist on disk (a stdin script, a frozen
    shell), every worker crashes on import and ``multiprocessing.Pool``
    respawns them forever — the pool hangs instead of failing.  A
    file-less ``__main__`` (``python -c``, an interactive REPL,
    embedded interpreters) is fine: the bootstrap skips the re-import."""
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    return path is None or os.path.exists(path)


def _pick_start_method(requested: Optional[str]) -> str:
    """``spawn`` where it can bootstrap, else ``fork``; requests win.

    The pool is started from inside a deliberately multi-threaded
    server: forking while query threads hold arbitrary locks (the
    import lock included — the engine lazily imports on its hot path)
    can hand a child a lock no thread will ever release, deadlocking
    its initializer.  ``spawn`` starts clean children that restore the
    replica from the snapshot file — a one-time cost per worker on a
    *warm* pool — so it is the default whenever the interpreter's
    ``__main__`` is spawn-bootstrappable (see :func:`_spawn_safe_main`);
    otherwise ``fork`` is the only working option and the caller should
    keep the server quiet while the pool starts."""
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise TopologyError(
                f"start method {requested!r} not available; choose from {available}"
            )
        return requested
    if "spawn" in available and _spawn_safe_main():
        return "spawn"
    if "fork" in available:
        return "fork"
    raise TopologyError(
        "process mode needs a spawn-bootstrappable __main__ "
        "(run from an importable script) on this platform"
    )


class ReplicaPool:
    """A warm pool of replica processes serving one generation.

    Construction snapshots ``system`` to a temporary file and starts
    ``workers`` processes, each restoring the snapshot into a private
    replica.  :meth:`run` then dispatches pre-chunked work; results
    stream back in completion order.  :meth:`close` tears the pool down
    and removes the snapshot file."""

    def __init__(
        self,
        system: Any,
        workers: int,
        start_method: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise TopologyError(f"replica workers must be >= 1, got {workers}")
        self.workers = workers
        self.generation = generation
        self.start_method = _pick_start_method(start_method)
        fd, self._snapshot_path = tempfile.mkstemp(
            prefix="topology-replica-", suffix=".topo"
        )
        os.close(fd)
        self._pool = None
        try:
            system.save(self._snapshot_path)
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=workers,
                initializer=_init_replica,
                initargs=(self._snapshot_path, generation),
            )
        except BaseException:
            self.close()
            raise

    def run(
        self, chunks: Sequence[Tuple[str, Sequence[Tuple[int, TopologyQuery]]]]
    ) -> List[List[Tuple[int, MethodResult]]]:
        """Execute every chunk; replies arrive in completion order (each
        reply keeps its items' batch indices).

        Every reply's attested generation must match the generation this
        pool was built for — a mismatch means a worker is serving a
        different snapshot than the parent believes (a respawned worker
        re-running a stale initializer, or a pool mix-up) and raises
        rather than letting wrong-generation answers merge silently."""
        if self._pool is None:
            raise TopologyError("replica pool is closed")
        trace = obs_current_wire()
        tracer = obs_tracer()
        out: List[List[Tuple[int, MethodResult]]] = []
        for reply_generation, items, spans in self._pool.imap_unordered(
            _run_chunk, [(method, items, trace) for method, items in chunks]
        ):
            tracer.ingest(spans)
            if reply_generation != self.generation:
                raise TopologyError(
                    f"replica reply attested generation {reply_generation}, "
                    f"but this pool serves generation {self.generation}"
                )
            out.append(items)
        return out

    def close(self) -> None:
        """Stop the workers and delete the snapshot file (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        if self._snapshot_path and os.path.exists(self._snapshot_path):
            try:
                os.remove(self._snapshot_path)
            except OSError:  # pragma: no cover - best effort cleanup
                pass
        self._snapshot_path = ""

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Shard backends (repro.shard serving)
# ----------------------------------------------------------------------
# Stamp installed by the shard initializer: (shard index, generation) as
# attested by the parent.  Every reply leads with it, so a cross-wired
# or stale worker is detected at the coordinator, never merged.
_SHARD_STAMP: Optional[Tuple[int, int]] = None


def _init_shard(snapshot_path: str, shard_index: int, generation: int) -> None:
    """Pool initializer: load this worker's shard snapshot."""
    global _REPLICA, _SHARD_STAMP
    from repro.persist import load_system

    _REPLICA = load_system(snapshot_path)
    _SHARD_STAMP = (shard_index, generation)
    # See _init_replica: never ship spans inherited across a fork.
    obs_tracer().reset()


def _shard_obs_stats() -> dict:
    """This worker's per-shard observability section, scraped by the
    coordinator's `/metrics` merge."""
    system = _REPLICA
    plan_cache = system.plan_cache_stats()
    return {
        "pid": os.getpid(),
        "generation": _SHARD_STAMP[1] if _SHARD_STAMP else None,
        "plan_cache": {
            "hits": plan_cache.hits,
            "misses": plan_cache.misses,
            "invalidations": plan_cache.invalidations,
            "size": plan_cache.size,
        },
        "calibrator": system.calibrator.snapshot(),
    }


def _run_shard_op(op: str, args: Any) -> Any:
    if op == "query_batch":
        method, items = args
        return [
            (index, _REPLICA.search(query, method=method))
            for index, query in items
        ]
    if op == "explain":
        query, method = args
        return _REPLICA.explain(query, method)
    if op == "digest":
        return _REPLICA.store.state_digest()
    if op == "ping":
        return "pong"
    if op == "obs_stats":
        return _shard_obs_stats()
    if op == "sleep":
        # Latency probe: lets operators (and the timeout tests) exercise
        # the coordinator's per-shard reply-deadline path on demand.
        time.sleep(float(args))
        return float(args)
    raise TopologyError(f"unknown shard op {op!r}")


def _shard_op(
    request: Tuple[str, Any, Optional[dict]]
) -> Tuple[Optional[Tuple[int, int]], Any, List[dict]]:
    """Execute one coordinator op against this worker's shard engine.

    ``request`` carries the coordinator's trace context (or ``None``);
    the reply trails with the spans this worker recorded under it, so
    the coordinator can stitch per-shard ``shard.query`` spans — and
    their engine children — into the request's trace."""
    op, args, trace = request
    if _REPLICA is None:  # pragma: no cover - initializer always ran
        raise TopologyError("shard worker used before initialization")
    shard_index = _SHARD_STAMP[0] if _SHARD_STAMP else None
    tracer = obs_tracer()
    with tracer.adopt(trace) as ctx:
        if op == "query_batch":
            with obs_span(
                "shard.query",
                shard=shard_index,
                pid=os.getpid(),
                method=args[0],
                items=len(args[1]),
            ):
                payload = _run_shard_op(op, args)
        else:
            payload = _run_shard_op(op, args)
    spans = tracer.take(ctx.trace_id) if ctx is not None else []
    return _SHARD_STAMP, payload, spans


class ShardCall:
    """One dispatched shard op; :meth:`result` gathers the reply.

    Split from the dispatch so a coordinator can scatter to every shard
    first and only then start gathering — the shards overlap for the
    whole execution, not just the tail."""

    __slots__ = ("_backend", "_async_result", "_timeout")

    def __init__(self, backend: "ShardBackend", async_result: Any, timeout: float) -> None:
        self._backend = backend
        self._async_result = async_result
        self._timeout = timeout

    def result(self) -> Any:
        """The reply payload, stamp-checked.

        Raises :class:`ShardUnavailableError` when no reply arrives
        within the timeout — the one signal a *dead* worker process can
        be relied on to produce (its pool never completes the task) —
        or when the worker crashed in a way the pool surfaces directly.
        Engine-level errors (unsupported query etc.) propagate as
        themselves: the shard is healthy, the request was not."""
        backend = self._backend
        try:
            stamp, payload, spans = self._async_result.get(self._timeout)
        except multiprocessing.TimeoutError:
            raise ShardUnavailableError(
                backend.shard_index,
                f"no reply within {self._timeout:g}s",
                retry_after=backend.retry_after,
            ) from None
        except ReproError:
            raise  # the shard answered; the request itself was bad
        except Exception as exc:  # worker crashed / reply unpicklable
            raise ShardUnavailableError(
                backend.shard_index,
                f"worker failed: {type(exc).__name__}: {exc}",
                retry_after=backend.retry_after,
            ) from exc
        obs_tracer().ingest(spans)
        expected = (backend.shard_index, backend.generation)
        if stamp != expected:
            raise TopologyError(
                f"shard reply stamped {stamp}, expected {expected}: "
                f"worker serves a different shard or generation"
            )
        return payload


class ShardBackend:
    """One warm worker process serving one shard snapshot.

    A dedicated single-process pool per shard (rather than one shared
    pool) keeps failure domains per-shard: a dead or wedged shard
    worker times out *its* calls with
    :class:`~repro.errors.ShardUnavailableError` while its siblings
    keep answering.  The pool respawns a crashed worker and re-runs the
    initializer, so a transiently killed shard heals on the next call."""

    def __init__(
        self,
        shard_index: int,
        snapshot_path: str,
        generation: int,
        timeout: float = 30.0,
        retry_after: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        self.shard_index = shard_index
        self.snapshot_path = os.fspath(snapshot_path)
        self.generation = generation
        self.timeout = timeout
        self.retry_after = retry_after
        self.start_method = _pick_start_method(start_method)
        context = multiprocessing.get_context(self.start_method)
        self._pool = context.Pool(
            processes=1,
            initializer=_init_shard,
            initargs=(self.snapshot_path, shard_index, generation),
        )

    def submit(
        self, op: str, args: Any = None, timeout: Optional[float] = None
    ) -> ShardCall:
        """Dispatch one op without waiting for the reply."""
        if self._pool is None:
            raise ShardUnavailableError(
                self.shard_index, "backend is closed", retry_after=self.retry_after
            )
        budget = self.timeout if timeout is None else timeout
        request = (op, args, obs_current_wire())
        return ShardCall(
            self, self._pool.apply_async(_shard_op, (request,)), budget
        )

    def call(self, op: str, args: Any = None, timeout: Optional[float] = None) -> Any:
        """Dispatch one op and wait for its reply."""
        return self.submit(op, args, timeout).result()

    def close(self) -> None:
        """Stop the worker process (idempotent).  The snapshot file is
        owned by the shard set, not the backend, and stays on disk."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ShardBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
