"""Concurrent serving layer: many queries, one shared engine.

:class:`TopologyServer` is the multi-threaded counterpart of
:class:`~repro.service.TopologyService` — the component that turns the
paper's online phase (Figure 10) into something that can serve heavy
interactive traffic against one shared, materialized
:class:`~repro.core.engine.TopologySearchSystem`:

* **Reader–writer coordination** — every query holds a shared *read*
  lease for its whole execution; :meth:`rebuild` and :meth:`restore`
  take the exclusive *write* path.  Queries therefore proceed in
  parallel with each other, and a writer never mutates state a reader
  is traversing.

* **Generation hot-swap** — :meth:`rebuild` does *not* rebuild the
  serving system in place.  It clones the base relations
  (:meth:`~repro.core.engine.TopologySearchSystem.clone_base`), runs the
  offline phase on the clone — concurrently with live traffic — and
  only then takes the write lock for a pointer swap measured in
  microseconds.  In-flight readers finish on the old generation, the
  next request sees the new one, and no request ever observes a
  half-built store.  :meth:`restore` hot-swaps a snapshot the same way.
  Every result is stamped with the generation that produced it
  (``MethodResult.generation``).

* **Single-flight deduplication** — when N concurrent requests ask the
  same (method, query) and the result is not cached yet, exactly one of
  them plans and executes; the other N-1 wait for that execution and
  share its result.  A thundering herd of identical queries costs one
  engine execution, not N.

* **Parallel batches** — :meth:`query_many` fans a workload out over a
  thread pool, *grouped by plan class* first: one leader per class runs
  ahead and populates the engine's plan cache, then the rest of the
  class fans out as plan-cache hits.  For CPU-bound workloads on
  multi-core machines, ``mode="process"`` fans out over warm replica
  processes instead (:mod:`repro.service.replica`) — the only way past
  the GIL on a stock interpreter.

The counters (:meth:`stats`) are exact under concurrency and obey two
invariants the stress tests pin down: ``hits + misses == requests`` and
``misses == executions + coalesced``.

Locking order, for maintainers: the RW lease is always outermost, then
the flight lock, then a cache/calibrator internal lock.  Nothing ever
acquires them in another order, and no engine call is made while the
flight lock is held (flights are waited on *outside* it).
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.engine import BuildReport, TopologySearchSystem
from repro.core.methods import MethodResult
from repro.core.plan import PlanCacheStats, QueryPlan
from repro.core.query import TopologyQuery
from repro.errors import TopologyError
from repro.obs import SlowQueryLog, current_trace, query_summary
from repro.obs import span as obs_span
from repro.obs import tracer as obs_tracer
from repro.service.cache import MISSING, CacheStats, LRUCache
from repro.service.facade import (
    DEFAULT_METHOD,
    LatencyStats,
    resolve_rebuild_config,
)

if TYPE_CHECKING:  # imported lazily at runtime (replica imports us back)
    from repro.service.replica import ReplicaPool

__all__ = ["ReadWriteLock", "ServerStats", "TopologyServer"]


class ReadWriteLock:
    """A reader–writer lock with writer preference.

    Any number of readers share the lock; a writer excludes everyone.
    A *waiting* writer blocks new readers (otherwise a steady read load
    would starve rebuilds forever), but the readers already inside
    finish first — which is exactly the generation contract: in-flight
    queries complete on the old generation, the swap happens, and the
    queued readers see the new one.

    Not reentrant: a thread holding a read lease must not request the
    write lock (that's a deadlock by construction)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class _Flight:
    """One in-flight engine execution other requests can latch onto."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[MethodResult] = None
        self.error: Optional[BaseException] = None

    def resolve(self, result: MethodResult) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def wait(self) -> MethodResult:
        self.event.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


@dataclass(frozen=True)
class ServerStats:
    """Counter snapshot for one :class:`TopologyServer`.

    ``requests`` counts every :meth:`TopologyServer.query` call;
    ``executions`` the engine executions dispatched (including failed
    ones — ``failures`` of them raised); ``coalesced`` the requests that
    waited on another request's in-flight execution instead of running
    their own.  Exact invariants:
    ``result_cache.hits + result_cache.misses == requests`` and
    ``result_cache.misses == executions + coalesced``."""

    generation: int
    requests: int
    executions: int
    coalesced: int
    failures: int
    rebuilds: int
    restores: int
    in_flight: int
    result_cache: CacheStats
    plan_cache: PlanCacheStats


class TopologyServer:
    """Thread-safe query serving over one shared topology system.

    The server owns the result cache, latency accounting and request
    coordination; the engine underneath owns the plan cache and the
    cost calibrator, so those swap atomically with the generation.

    ``system`` must already be built (or snapshot-restored): a server
    exists to serve, and every lifecycle transition afterwards goes
    through :meth:`rebuild`/:meth:`restore`.  Use it as a context
    manager or call :meth:`close` to release the worker pools."""

    def __init__(
        self,
        system: TopologySearchSystem,
        cache_size: int = 4096,
        default_method: str = DEFAULT_METHOD,
        max_workers: Optional[int] = None,
        slow_query_seconds: Optional[float] = None,
    ) -> None:
        if system.store is None:
            raise TopologyError(
                "TopologyServer serves a built system: call build() first "
                "or restore from a snapshot"
            )
        self.default_method = default_method.lower()
        self.max_workers = max_workers
        self._rw = ReadWriteLock()
        self._system = system
        self._generation = 1
        self._cache = LRUCache(cache_size)
        # Single-flight table.  The flight lock also makes the
        # request/hit/miss/coalesced/execution accounting atomic per
        # request, which is what lets the stress tests assert exact
        # counter invariants under heavy thread contention.
        self._flights: Dict[Tuple[str, TopologyQuery], _Flight] = {}
        self._flight_lock = threading.Lock()
        self._latency: Dict[str, LatencyStats] = {}
        self._latency_lock = threading.Lock()
        # One rebuild/restore at a time; the heavy build work happens
        # under this mutex but *outside* the write lock, so traffic
        # keeps flowing while the next generation is prepared.
        self._writer_mutex = threading.Lock()
        self._pools: Dict[int, ThreadPoolExecutor] = {}
        self._pool_lock = threading.Lock()
        self._replica_pool = None  # lazily created repro.service.replica pool
        self._replica_workers = 0
        self._replica_generation = 0
        # One process-mode fan-out at a time: a second caller with a
        # different worker count would otherwise close the pool the
        # first is consuming mid-run (and concurrent replica batches
        # would just fight over the same cores anyway).
        self._replica_mutex = threading.Lock()
        self._closed = False
        # Over-threshold queries emit one structured record each (see
        # repro.obs.slowlog); threshold from REPRO_SLOW_QUERY_SECONDS
        # unless given explicitly.
        self.slow_query_log = SlowQueryLog(slow_query_seconds, source="server")
        self._requests = 0
        self._executions = 0
        self._coalesced = 0
        self._failures = 0
        self._rebuilds = 0
        self._restores = 0

    # ------------------------------------------------------------------
    # Construction conveniences / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        path: str,
        cache_size: int = 4096,
        default_method: str = DEFAULT_METHOD,
        max_workers: Optional[int] = None,
    ) -> "TopologyServer":
        """Cold-start a server from a :mod:`repro.persist` snapshot."""
        return cls(
            TopologySearchSystem.from_snapshot(path),
            cache_size=cache_size,
            default_method=default_method,
            max_workers=max_workers,
        )

    def close(self) -> None:
        """Shut down worker pools (idempotent).  Queries submitted after
        close still work — they just run on the caller's thread.  An
        in-flight ``query_many(mode="process")`` batch is allowed to
        finish first (terminating the pool under its consumer would
        strand it waiting on results that never arrive)."""
        with self._pool_lock:
            pools = list(self._pools.values())
            self._pools.clear()
            replicas, self._replica_pool = self._replica_pool, None
            self._closed = True
        for pool in pools:
            pool.shutdown(wait=True)
        if replicas is not None:
            with self._replica_mutex:  # drain the in-flight batch
                replicas.close()

    def __enter__(self) -> "TopologyServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def generation(self) -> int:
        """The serving generation (1-based; bumped by every hot swap)."""
        return self._generation

    @property
    def system(self) -> TopologySearchSystem:
        """The currently serving system.  Treat as read-only: mutating
        it in place bypasses the generation contract."""
        return self._system

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def query(
        self, query: TopologyQuery, method: Optional[str] = None
    ) -> MethodResult:
        """Evaluate one query; safe to call from any number of threads.

        Repeats are served from the LRU result cache; concurrent
        identical requests are deduplicated single-flight (one engine
        execution, shared by every waiter).  The whole call holds a read
        lease, so the answer is always consistent with exactly one
        generation — stamped on ``result.generation``."""
        name = (method or self.default_method).lower()
        with obs_span("server.query", ingress=True, method=name):
            with self._rw.read_locked():
                return self._query_locked(name, query)

    def _query_locked(self, name: str, query: TopologyQuery) -> MethodResult:
        """The body of :meth:`query`; caller holds a read lease."""
        system = self._system
        generation = self._generation
        key = (name, query)
        with self._flight_lock:
            self._requests += 1
            cached = self._cache.get(key, MISSING)
            if cached is not MISSING:
                return cached
            flight = self._flights.get(key)
            owner = flight is None
            if owner:
                flight = _Flight()
                self._flights[key] = flight
                self._executions += 1
            else:
                self._coalesced += 1
        if not owner:
            # Latch onto the owner's execution.  Waiting happens outside
            # the flight lock, so the owner can resolve; both hold read
            # leases, so a pending writer cannot wedge between them.
            return flight.wait()
        return self._execute_flight(system, generation, name, query, key, flight)

    def _execute_flight(
        self,
        system: TopologySearchSystem,
        generation: int,
        name: str,
        query: TopologyQuery,
        key: Tuple[str, TopologyQuery],
        flight: _Flight,
    ) -> MethodResult:
        try:
            result = system.search(query, method=name)
        except BaseException as error:
            with self._flight_lock:
                self._failures += 1
                self._flights.pop(key, None)
            flight.fail(error)
            raise
        result.generation = generation
        self._record_latency(name, result.elapsed_seconds)
        if result.elapsed_seconds >= self.slow_query_log.threshold_seconds:
            self._slow_query(system, generation, name, query, result)
        # relint: disable=R2 (single-flight protocol: register, execute unlocked, then settle — the result comes from the engine, not from lock-spanning reads)
        with self._flight_lock:
            self._cache.put(key, result)
            self._flights.pop(key, None)
        flight.resolve(result)
        return result

    def _slow_query(
        self,
        system: TopologySearchSystem,
        generation: int,
        name: str,
        query: TopologyQuery,
        result: MethodResult,
    ) -> None:
        """Emit one structured slow-query record (threshold already met).
        The per-span breakdown covers the spans finished so far — the
        engine's plan/execute children of the still-open request span."""
        ctx = current_trace()
        spans = obs_tracer().trace_spans(ctx.trace_id) if ctx is not None else []
        self.slow_query_log.maybe_record(
            elapsed_seconds=result.elapsed_seconds,
            method=name,
            query=query_summary(query),
            generation=generation,
            trace_id=ctx.trace_id if ctx is not None else None,
            plan={"choice": result.plan_choice},
            calibrator_version=system.calibrator.version,
            spans=spans,
        )

    def _record_latency(self, name: str, seconds: float) -> None:
        with self._latency_lock:
            stats = self._latency.get(name)
            if stats is None:
                stats = self._latency.setdefault(name, LatencyStats(name))
        stats.record(seconds)

    def explain(
        self, query: TopologyQuery, method: Optional[str] = None
    ) -> QueryPlan:
        """The plan :meth:`query` would execute, with every
        alternative's estimated and calibrated cost (never cached in
        the result cache, never executed)."""
        name = (method or self.default_method).lower()
        with self._rw.read_locked():
            return self._system.explain(query, name)

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def query_many(
        self,
        queries: Iterable[TopologyQuery],
        method: Optional[str] = None,
        parallel: Optional[int] = None,
        mode: str = "thread",
    ) -> List[MethodResult]:
        """Evaluate a batch, returning results in submission order.

        ``parallel`` >= 2 fans the batch out over that many workers.
        The workload is grouped by *plan class* first
        (:class:`~repro.core.plan.PlanClass`): one leader per class runs
        ahead of the fan-out, so by the time the bulk of a
        repeated-shape batch hits the pool its plans are cache hits and
        the optimizer runs once per class, not once per query.
        Duplicates are deduplicated through the result cache and
        single-flight exactly like :meth:`query`.

        ``mode="thread"`` (default) shares this server's engine and
        caches across workers — ideal when the batch is repetitive or
        the interpreter can run threads in parallel.  ``mode="process"``
        fans out over warm *replica processes*, each serving its own
        copy of the current generation (:mod:`repro.service.replica`):
        per-query work is then truly parallel on a GIL interpreter, at
        the price of replica-local plan caches and no shared
        single-flight.  Replica results are folded back into this
        server's result cache and latency accounting."""
        batch = list(queries)
        name = (method or self.default_method).lower()
        if mode not in ("thread", "process"):
            raise TopologyError(f"unknown query_many mode {mode!r}")
        workers = int(parallel or 0)
        # After close() there are no pools, but batches still work —
        # they degrade to the serial loop on the caller's thread.
        if workers <= 1 or len(batch) <= 1 or self._closed:
            return [self.query(q, method=name) for q in batch]
        if mode == "process":
            return self._query_many_replicas(batch, name, workers)
        return self._query_many_threads(batch, name, workers)

    def _plan_class_groups(
        self, batch: Sequence[TopologyQuery], name: str
    ) -> List[List[int]]:
        """Batch indices grouped by the queries' plan class, group order
        by first appearance.  A query whose class cannot be computed
        (e.g. an entity pair the build does not cover) gets a singleton
        group; the error surfaces at execution time."""
        with self._rw.read_locked():
            system = self._system
            method_obj = system.method(name)
            groups: Dict[Any, List[int]] = {}
            for index, query in enumerate(batch):
                try:
                    cls_key: Any = system.planner.classify(query, method_obj)
                except Exception:
                    cls_key = ("unclassified", index)
                groups.setdefault(cls_key, []).append(index)
        return list(groups.values())

    def _query_many_threads(
        self, batch: List[TopologyQuery], name: str, workers: int
    ) -> List[MethodResult]:
        pool = self._thread_pool(workers)
        if pool is None:  # closed while we were getting ready
            return [self.query(q, method=name) for q in batch]
        groups = self._plan_class_groups(batch, name)
        leaders = [group[0] for group in groups]
        followers = [index for group in groups for index in group[1:]]
        results: List[Optional[MethodResult]] = [None] * len(batch)

        def run(index: int) -> Tuple[int, MethodResult]:
            return index, self.query(batch[index], method=name)

        # Two waves: leaders warm the plan cache (and the result cache
        # for exact duplicates), then the rest fan out as cache hits.
        # Each submission carries its own copy of the caller's context:
        # a Context can only be entered by one thread at a time, so the
        # copy happens here, per task, not once for the whole wave.
        for wave in (leaders, followers):
            if not wave:
                continue
            submitted: List[Tuple[int, Any]] = []
            try:
                for index in wave:
                    context = contextvars.copy_context()
                    submitted.append((index, pool.submit(context.run, run, index)))
            except RuntimeError:  # pool shut down mid-batch (close())
                pass
            for index, future in submitted:
                results[index] = future.result()[1]
            for index in wave:  # anything unsubmitted: caller's thread
                if results[index] is None:
                    results[index] = self.query(batch[index], method=name)
        return results  # type: ignore[return-value]  # every index was assigned

    def _thread_pool(self, workers: int) -> Optional[ThreadPoolExecutor]:
        """A pool of the requested width, or ``None`` once closed (the
        caller then degrades to the serial loop)."""
        capped = workers if self.max_workers is None else min(workers, self.max_workers)
        capped = max(1, capped)
        with self._pool_lock:
            if self._closed:
                return None
            pool = self._pools.get(capped)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=capped,
                    thread_name_prefix=f"topology-server-{capped}",
                )
                self._pools[capped] = pool
        return pool

    def _query_many_replicas(
        self, batch: List[TopologyQuery], name: str, workers: int
    ) -> List[MethodResult]:
        groups = self._plan_class_groups(batch, name)
        with self._replica_mutex:
            pool_and_generation = self._current_replica_pool(workers)
            if pool_and_generation is None:  # closed: serial fallback
                return [self.query(q, method=name) for q in batch]
            pool, generation = pool_and_generation
            # Whole plan-class groups land on one replica so each
            # replica plans each of its classes once; groups are dealt
            # biggest-first onto the emptiest bucket to balance load.
            buckets: List[List[int]] = [[] for _ in range(workers)]
            for group in sorted(groups, key=len, reverse=True):
                min(buckets, key=len).extend(group)
            chunks = [
                (name, [(i, batch[i]) for i in bucket])
                for bucket in buckets
                if bucket
            ]
            # The fan-out itself runs WITHOUT the read lease: a pending
            # hot swap must only ever wait microseconds, never a batch.
            # The replicas serve their own copy of ``generation``, so a
            # swap mid-run cannot tear these results — they just come
            # back stamped with the generation they were computed from.
            results: List[Optional[MethodResult]] = [None] * len(batch)
            for pairs in pool.run(chunks):
                for index, result in pairs:
                    result.generation = generation
                    results[index] = result
                    self._record_latency(name, result.elapsed_seconds)
            # Fold into the shared result cache only if that generation
            # is still the serving one (checked under a fresh lease).
            with self._rw.read_locked():
                if self._generation == generation:
                    for index, result in enumerate(results):
                        if result is not None:
                            self._cache.put((name, batch[index]), result)
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - defensive
            raise TopologyError(f"replica fan-out lost queries: {missing}")
        return results  # type: ignore[return-value]

    def _current_replica_pool(
        self, workers: int
    ) -> Optional[Tuple["ReplicaPool", int]]:
        """The warm replica pool for (current generation, ``workers``),
        building one if needed, or ``None`` once closed.  Caller holds
        ``_replica_mutex``, so no consumer is mid-run on the pool being
        replaced.

        Construction — a snapshot write plus worker start-up, seconds
        at real scale — deliberately happens *outside* the read lease
        and outside ``_pool_lock``: under the writer-preferring RW lock
        a lease held that long would stall a pending hot swap and,
        behind it, every new query.  Capturing ``(system, generation)``
        under a brief lease is enough for correctness: a swapped-out
        system is never mutated in place, so snapshotting it leaselessly
        still yields a consistent image of its generation.  If a swap
        lands mid-construction, the freshly built pool is already stale:
        rather than registering it (and serving one whole batch from the
        old generation), construction re-checks the serving generation
        and retries against the new one, bounded so a rebuild storm
        degrades to serving the latest complete pool instead of looping.
        The pool itself is built with the generation it serves and every
        worker reply re-attests it (:meth:`ReplicaPool.run`)."""
        from repro.service.replica import ReplicaPool

        fresh = None
        generation = None
        for _ in range(3):  # bounded retry: swaps are rare, loops aren't
            with self._rw.read_locked():
                system = self._system
                current = self._generation
            if fresh is not None and generation == current:
                break
            with self._pool_lock:
                if self._closed:
                    if fresh is not None:
                        fresh.close()
                    return None
                pool = self._replica_pool
                if (
                    pool is not None
                    and self._replica_workers == workers
                    and self._replica_generation == current
                ):
                    if fresh is not None:
                        fresh.close()
                    return pool, current
                # Stale (old generation or different width): replace.
                self._replica_pool = None
                stale = pool
            if stale is not None:
                stale.close()
            if fresh is not None:
                fresh.close()
            generation = current
            fresh = ReplicaPool(system, workers, generation=current)
        # relint: disable=R2 (bounded retry loop: each pass re-reads everything under one acquisition and builds the pool unlocked; no value spans two acquisitions)
        with self._pool_lock:
            if self._closed:  # closed while we were building
                fresh.close()
                return None
            self._replica_pool = fresh
            self._replica_workers = workers
            self._replica_generation = generation
        return fresh, generation

    # ------------------------------------------------------------------
    # Lifecycle: hot rebuild + snapshot restore
    # ------------------------------------------------------------------
    def rebuild(
        self,
        entity_pairs: Optional[Sequence[Tuple[str, str]]] = None,
        **build_kwargs: Any,
    ) -> BuildReport:
        """Re-run the offline phase *without* interrupting traffic.

        The previous build's configuration is reused unless overridden
        (same rules as :meth:`TopologyService.rebuild`).  The build runs
        on a clone of the base relations while queries keep executing
        against the current generation; learned calibration factors are
        carried over; then an exclusive pointer swap — microseconds, not
        build-seconds — publishes the new generation and drops the
        result cache.  In-flight queries finish on the generation they
        started on."""
        with self._writer_mutex:
            current = self._system
            pairs, kwargs = resolve_rebuild_config(
                current, entity_pairs, build_kwargs
            )
            successor = current.clone_base()
            report = successor.build(pairs, **kwargs)
            successor.restore_calibration(current.calibrator.export_state())
            # Runtime knobs survive the swap too: an operator who pinned
            # plan choices must not have calibration silently re-enabled
            # by a rebuild.
            successor.calibration_enabled = current.calibration_enabled
            self._swap(successor)
            self._rebuilds += 1
            return report

    def restore(self, path: str) -> None:
        """Hot-swap the serving system for one restored from a
        :mod:`repro.persist` snapshot (the "load yesterday's build"
        path).  Loading happens off the write lock; traffic continues
        until the pointer swap."""
        with self._writer_mutex:
            successor = TopologySearchSystem.from_snapshot(path)
            self._swap(successor)
            self._restores += 1

    def _swap(self, successor: TopologySearchSystem) -> None:
        """Publish ``successor`` as the next generation (exclusive)."""
        with self._rw.write_locked():
            # No readers inside => no flights outstanding: every flight
            # is created and resolved under a read lease.
            self._system = successor
            self._generation += 1
            self._cache.clear()

    def save(self, path: str) -> None:
        """Snapshot the serving generation.

        The system reference is captured under a brief lease; the write
        itself — seconds at real scale — runs leaselessly so a pending
        hot swap (and, behind it, all new queries) never waits on disk.
        That is consistent: a swapped-out system is never mutated in
        place, so the captured generation stays a stable image even if
        a swap lands mid-write."""
        with self._rw.read_locked():
            system = self._system
        system.save(path)

    def invalidate(self) -> None:
        """Drop every cached result (counters survive).

        Takes the exclusive write path: clearing while an execution is
        in flight would let that execution re-insert its
        pre-invalidation result right after the clear.  Under the write
        lock no reader — hence no flight — is outstanding.  Do not call
        from a thread that holds a read lease (i.e. from inside a query
        on this server); the lock is not reentrant."""
        with self._rw.write_locked():
            self._cache.clear()

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        with self._flight_lock:
            return ServerStats(
                generation=self._generation,
                requests=self._requests,
                executions=self._executions,
                coalesced=self._coalesced,
                failures=self._failures,
                rebuilds=self._rebuilds,
                restores=self._restores,
                in_flight=len(self._flights),
                result_cache=self._cache.stats(),
                plan_cache=self._system.plan_cache_stats(),
            )

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def plan_cache_stats(self) -> PlanCacheStats:
        return self._system.plan_cache_stats()

    def calibration_stats(self) -> Dict[str, Any]:
        return self._system.calibrator.snapshot()

    def latency_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-method engine-execution latency snapshots (cache hits and
        coalesced waits do not contribute — they would measure the
        coordination layer, not the engine)."""
        with self._latency_lock:
            items = sorted(self._latency.items())
        return {name: stats.snapshot() for name, stats in items}

    def reset_latency_stats(self) -> None:
        with self._latency_lock:
            self._latency.clear()
