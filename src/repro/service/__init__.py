"""Online query serving: cached, batched, instrumented — and concurrent.

Three front ends share the same thread-safe machinery:

:class:`TopologyService`
    The single-caller facade: LRU result cache, batching, latency
    accounting, in-place rebuild.

:class:`TopologyServer`
    The concurrent serving layer: a reader–writer lease around a shared
    engine, generation hot-swap rebuilds (traffic keeps flowing while
    the next generation builds on a clone), single-flight deduplication
    of identical concurrent queries, and plan-class-grouped parallel
    ``query_many`` over thread or replica-process pools.

:class:`ShardCoordinator`
    The same serving surface over a *sharded* store (:mod:`repro.shard`):
    one warm worker process per shard, total scatter-gather per query
    with a paper-identical top-k merge, and all-or-nothing generation
    commits for rebuilds.

>>> from repro.service import TopologyServer
>>> server = TopologyServer.from_snapshot("biozon.topo")
>>> result = server.query(query)             # engine execution
>>> result = server.query(query)             # LRU cache hit
>>> server.rebuild()                         # hot swap: no downtime
>>> server.stats().generation
2
"""

from repro.service.cache import MISSING, CacheStats, LRUCache
from repro.service.coordinator import (
    CoordinatorStats,
    ScatterPlan,
    ShardCoordinator,
)
from repro.service.facade import (
    DEFAULT_METHOD,
    LatencyStats,
    TopologyService,
    resolve_rebuild_config,
)
from repro.service.server import ReadWriteLock, ServerStats, TopologyServer

__all__ = [
    "CacheStats",
    "CoordinatorStats",
    "DEFAULT_METHOD",
    "LRUCache",
    "LatencyStats",
    "MISSING",
    "ReadWriteLock",
    "ScatterPlan",
    "ServerStats",
    "ShardCoordinator",
    "TopologyServer",
    "TopologyService",
    "resolve_rebuild_config",
]
