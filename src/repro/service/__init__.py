"""Online query service: cached, batched, instrumented dispatch.

>>> from repro.service import TopologyService
>>> service = TopologyService.from_snapshot("biozon.topo")
>>> result = service.query(query)            # engine execution
>>> result = service.query(query)            # LRU cache hit
>>> service.cache_stats().hit_rate
0.5
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.facade import DEFAULT_METHOD, LatencyStats, TopologyService

__all__ = [
    "CacheStats",
    "DEFAULT_METHOD",
    "LRUCache",
    "LatencyStats",
    "TopologyService",
]
