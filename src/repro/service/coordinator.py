"""Scatter-gather serving over a sharded topology store.

:class:`ShardCoordinator` serves the same surface as
:class:`~repro.service.TopologyServer` — ``query`` / ``query_many`` /
``explain`` / ``rebuild`` / ``stats`` / ``latency_stats`` /
``generation`` — so :class:`~repro.service.http.TopologyHttpApp` fronts
either without knowing which it got.  Underneath, instead of one shared
engine, it opens a shard set (:mod:`repro.shard`) and keeps one warm
worker *process* per shard (:class:`~repro.service.replica.ShardBackend`),
so a query's per-shard executions run truly in parallel on a GIL
interpreter and each shard process only ever pages its own slice of
AllTops/LeftTops.

**Every query fans out to every shard.**  Routing is by data (the E1
endpoint of each stored row), not by query — a query's answer can draw
rows from any bucket — so the scatter is total and correctness comes
from the merge:

* exhaustive methods (no scores): per-shard tid sets are disjointly
  routed subsets of the global answer; the merge is set union, sorted
  ascending exactly as the engine orders exhaustive results;
* top-k methods: every shard ranks its candidates with **global**
  scores (TopInfo is replicated), so each shard's local top-k is the
  restriction of the global top-k order to its rows; the merge unions
  the score maps, re-ranks with the engine's own ordering
  (score desc, tid desc) and cuts at k — identical to the unsharded
  answer, as the equality tests assert method by method.

The scatter *plan* — which merge applies, driven by the method's
declared shape — is computed once per query class and memoized; per
query, only the fan-out and merge run.

**Failure modes are loud.**  A dead or wedged shard worker surfaces as
:class:`~repro.errors.ShardUnavailableError` after its reply deadline
(the HTTP layer maps it to ``503 shard_unavailable`` + ``Retry-After``);
a partial answer is never returned.  Every worker reply is stamped with
(shard index, generation) and checked at the gather.

**Rebuild is all-or-nothing.**  ``rebuild()`` builds a successor system
from a clone of the (replicated) base relations, splits it into a fresh
shard set in a new generation directory, starts and pings a full set of
new backends, and only then — under the exclusive write lease — swaps
backends, manifest, and generation in one step and drops the result
cache.  Any failure before the swap closes the new backends and leaves
the serving generation untouched; readers never observe a mixed set.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.methods import METHOD_CLASSES, MethodResult
from repro.core.plan import PlanCacheStats, QueryPlan
from repro.core.query import TopologyQuery
from repro.errors import ShardError, ShardUnavailableError, TopologyError
from repro.obs import SlowQueryLog, current_trace, query_summary
from repro.obs import span as obs_span
from repro.obs import tracer as obs_tracer
from repro.parallel.partition import histogram_skew
from repro.service.cache import MISSING, CacheStats, LRUCache
from repro.service.facade import (
    DEFAULT_METHOD,
    LatencyStats,
    resolve_rebuild_config,
)
from repro.service.replica import ShardBackend
from repro.service.server import ReadWriteLock, _Flight
from repro.shard.build import SKEW_WARNING_THRESHOLD
from repro.shard.manifest import ShardManifest, read_manifest

if TYPE_CHECKING:  # imported lazily at runtime inside rebuild()
    from repro.core.engine import BuildReport

__all__ = ["CoordinatorStats", "ScatterPlan", "ShardCoordinator"]

_LOG = logging.getLogger("repro.shard")


@dataclass(frozen=True)
class ScatterPlan:
    """How answers from the shards merge for one query class.

    ``ranked`` mirrors the method's declared shape (``Method.is_topk``):
    ranked methods merge by global-score re-rank + cut, exhaustive ones
    by sorted set union.  An exhaustive method still merges ranked for
    an individual query that carries a top-k cut-off (see
    :meth:`ShardCoordinator._merge`)."""

    method: str
    ranked: bool


@dataclass(frozen=True)
class CoordinatorStats:
    """Counter snapshot for one :class:`ShardCoordinator`.

    Field-compatible with :class:`~repro.service.server.ServerStats`
    (same invariants: ``hits + misses == requests``, ``misses ==
    executions + coalesced``) so the HTTP stats serializer applies
    unchanged; ``shards`` adds the per-shard sections (routing load,
    health counters, skew), ``uptime_seconds`` how long this
    coordinator has been serving, and ``started_generation`` the
    generation it started on (``generation - started_generation`` =
    rebuild commits this process has lived through)."""

    generation: int
    requests: int
    executions: int
    coalesced: int
    failures: int
    rebuilds: int
    restores: int
    in_flight: int
    result_cache: CacheStats
    plan_cache: PlanCacheStats
    shards: List[Dict[str, Any]] = field(default_factory=list)
    uptime_seconds: float = 0.0
    started_generation: int = 1


class ShardCoordinator:
    """Scatter-gather query serving over one shard set.

    Open with a manifest path (or parsed
    :class:`~repro.shard.ShardManifest`); construction starts one
    backend process per shard and pings each, so a coordinator that
    constructed successfully is serving.  Use as a context manager or
    call :meth:`close`.
    """

    def __init__(
        self,
        manifest: Union[str, ShardManifest],
        cache_size: int = 4096,
        default_method: str = DEFAULT_METHOD,
        shard_timeout: float = 30.0,
        retry_after: int = 1,
        start_method: Optional[str] = None,
        slow_query_seconds: Optional[float] = None,
    ) -> None:
        if not isinstance(manifest, ShardManifest):
            manifest = read_manifest(manifest)
        self.default_method = default_method.lower()
        self.shard_timeout = shard_timeout
        self.retry_after = retry_after
        self._start_method = start_method
        self._rw = ReadWriteLock()
        self._manifest = manifest
        self._generation = 1
        self._cache = LRUCache(cache_size)
        self._flights: Dict[Tuple[str, TopologyQuery], _Flight] = {}
        self._flight_lock = threading.Lock()
        self._latency: Dict[str, LatencyStats] = {}
        self._latency_lock = threading.Lock()
        self._writer_mutex = threading.Lock()
        self._scatter_plans: Dict[str, ScatterPlan] = {}
        self._shard_counters: List[Dict[str, int]] = [
            {"calls": 0, "failures": 0, "timeouts": 0}
            for _ in range(manifest.count)
        ]
        self._counter_lock = threading.Lock()
        self._shard_rows: List[int] = self._count_routed_rows(manifest)
        self._owned_dir: Optional[str] = None  # generation dir we created
        self._closed = False
        self.slow_query_log = SlowQueryLog(slow_query_seconds, source="coordinator")
        self._started_monotonic = time.monotonic()
        self._started_generation = self._generation
        # Routing-skew warnings are emitted at most once per generation
        # (a /stats poller past 2x skew must not flood the logs).
        self._skew_warned_generation: Optional[int] = None
        self._requests = 0
        self._executions = 0
        self._coalesced = 0
        self._failures = 0
        self._rebuilds = 0
        self._backends = self._start_backends(manifest, self._generation)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def _count_routed_rows(manifest: ShardManifest) -> List[int]:
        from repro.persist import snapshot_info

        rows = []
        for path in manifest.shard_paths:
            info = snapshot_info(path)
            rows.append(info.alltops_rows + info.lefttops_rows)
        return rows

    def _start_backends(
        self, manifest: ShardManifest, generation: int
    ) -> List[ShardBackend]:
        """Start and verify one backend per shard — all or none.

        Backends are started first (process spawn overlaps across
        shards) and pinged second; the ping both warms the worker and
        checks its (shard index, generation) stamp."""
        backends: List[ShardBackend] = []
        try:
            for index, path in enumerate(manifest.shard_paths):
                backends.append(
                    ShardBackend(
                        index,
                        path,
                        generation,
                        timeout=self.shard_timeout,
                        retry_after=self.retry_after,
                        start_method=self._start_method,
                    )
                )
            calls = [backend.submit("ping") for backend in backends]
            for call in calls:
                call.result()
        except BaseException:
            for backend in backends:
                backend.close()
            raise
        return backends

    def close(self) -> None:
        """Stop every shard backend (idempotent)."""
        with self._writer_mutex:
            self._closed = True
            backends, self._backends = self._backends, []
        for backend in backends:
            backend.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def generation(self) -> int:
        """The serving generation (1-based; bumped by every commit)."""
        return self._generation

    @property
    def num_shards(self) -> int:
        return self._manifest.count

    @property
    def manifest(self) -> ShardManifest:
        """The manifest of the currently serving generation."""
        return self._manifest

    # ------------------------------------------------------------------
    # Scatter planning
    # ------------------------------------------------------------------
    def scatter_plan(self, method: Optional[str] = None) -> ScatterPlan:
        """The (memoized) merge plan for a method's query class."""
        name = (method or self.default_method).lower()
        plan = self._scatter_plans.get(name)
        if plan is None:
            cls = METHOD_CLASSES.get(name)
            if cls is None:
                raise TopologyError(f"unknown method {name!r}")
            plan = ScatterPlan(method=name, ranked=cls.is_topk)
            self._scatter_plans[name] = plan
        return plan

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def query(
        self, query: TopologyQuery, method: Optional[str] = None
    ) -> MethodResult:
        """Evaluate one query across every shard and merge.

        Caching, single-flight deduplication and generation stamping
        behave exactly like :meth:`TopologyServer.query`; the engine
        execution is replaced by a scatter to all shard backends and a
        paper-identical merge of their partial answers."""
        name = (method or self.default_method).lower()
        with self._rw.read_locked():
            return self._query_locked(name, query)

    def _query_locked(self, name: str, query: TopologyQuery) -> MethodResult:
        backends = self._backends
        generation = self._generation
        key = (name, query)
        with self._flight_lock:
            self._requests += 1
            cached = self._cache.get(key, MISSING)
            if cached is not MISSING:
                return cached
            flight = self._flights.get(key)
            owner = flight is None
            if owner:
                flight = _Flight()
                self._flights[key] = flight
                self._executions += 1
            else:
                self._coalesced += 1
        if not owner:
            return flight.wait()
        try:
            merged = self._scatter_merge(
                backends, generation, name, [(0, query)]
            )
            result = merged[0]
        except BaseException as error:
            # relint: disable=R2 (single-flight protocol: register, execute unlocked, then settle — the result comes from the scatter, not from lock-spanning reads)
            with self._flight_lock:
                self._failures += 1
                self._flights.pop(key, None)
            flight.fail(error)
            raise
        with self._flight_lock:
            self._cache.put(key, result)
            self._flights.pop(key, None)
        flight.resolve(result)
        return result

    def query_many(
        self,
        queries: Iterable[TopologyQuery],
        method: Optional[str] = None,
        parallel: Optional[int] = None,
        mode: str = "thread",
    ) -> List[MethodResult]:
        """Evaluate a batch, returning results in submission order.

        The whole uncached remainder of the batch ships to every shard
        as **one** op per shard — the scatter is inherently
        process-parallel (one worker per shard), so ``parallel`` and
        ``mode`` are accepted for surface compatibility and ignored.
        Duplicates inside the batch scatter once and share the merged
        result; everything folds into the result cache."""
        batch = list(queries)
        name = (method or self.default_method).lower()
        if mode not in ("thread", "process"):
            raise TopologyError(f"unknown query_many mode {mode!r}")
        if not batch:
            return []
        with self._rw.read_locked():
            backends = self._backends
            generation = self._generation
            results: List[Optional[MethodResult]] = [None] * len(batch)
            # Batch-local dedup: one scatter slot per distinct query.
            slots: Dict[Tuple[str, TopologyQuery], List[int]] = {}
            with self._flight_lock:
                self._requests += len(batch)
                for index, query in enumerate(batch):
                    key = (name, query)
                    cached = self._cache.get(key, MISSING)
                    if cached is not MISSING:
                        results[index] = cached
                    else:
                        slots.setdefault(key, []).append(index)
                self._executions += len(slots)
                self._coalesced += sum(
                    len(positions) - 1 for positions in slots.values()
                )
            if slots:
                items = [
                    (slot, key[1]) for slot, key in enumerate(slots)
                ]
                try:
                    merged = self._scatter_merge(
                        backends, generation, name, items
                    )
                except BaseException:
                    # relint: disable=R2 (single-flight protocol: the admit/settle critical sections bracket an unlocked scatter; results are per-slot, not a composite read)
                    with self._flight_lock:
                        self._failures += len(slots)
                    raise
                with self._flight_lock:
                    for slot, (key, positions) in enumerate(slots.items()):
                        result = merged[slot]
                        self._cache.put(key, result)
                        for index in positions:
                            results[index] = result
        return results  # type: ignore[return-value]  # every slot filled

    def _scatter_merge(
        self,
        backends: Sequence[ShardBackend],
        generation: int,
        name: str,
        items: Sequence[Tuple[int, TopologyQuery]],
    ) -> Dict[int, MethodResult]:
        """Fan ``items`` out to every backend, gather, merge per item.

        Dispatch completes for *all* shards before the first gather
        blocks, so shard executions overlap for their whole duration.
        Any shard failing (dead worker, reply deadline) aborts the
        whole call — never a partial merge."""
        plan = self.scatter_plan(name)
        if not backends:
            raise TopologyError("coordinator is closed")
        with obs_span(
            "coordinator.scatter",
            ingress=True,
            method=name,
            shards=len(backends),
            items=len(items),
        ):
            calls = []
            for backend in backends:
                self._bump_shard(backend.shard_index, "calls")
                try:
                    calls.append(
                        backend.submit("query_batch", (name, list(items)))
                    )
                except ShardUnavailableError:
                    self._bump_shard(backend.shard_index, "failures")
                    raise
            partials: Dict[int, List[MethodResult]] = {
                index: [] for index, _ in items
            }
            for backend, call in zip(backends, calls):
                try:
                    reply = call.result()
                except ShardUnavailableError:
                    self._bump_shard(backend.shard_index, "timeouts")
                    self._bump_shard(backend.shard_index, "failures")
                    raise
                except Exception:
                    self._bump_shard(backend.shard_index, "failures")
                    raise
                for index, partial in reply:
                    partials[index].append(partial)
            queries = dict(items)
            merged: Dict[int, MethodResult] = {}
            for index, parts in partials.items():
                if len(parts) != len(backends):  # pragma: no cover - defensive
                    raise ShardError(
                        f"query {index} got {len(parts)} partial answers "
                        f"from {len(backends)} shards"
                    )
                result = self._merge(plan, queries[index], parts)
                result.generation = generation
                self._record_latency(name, result.elapsed_seconds)
                if (
                    result.elapsed_seconds
                    >= self.slow_query_log.threshold_seconds
                ):
                    self._slow_query(generation, name, queries[index], result)
                merged[index] = result
        return merged

    def _slow_query(
        self,
        generation: int,
        name: str,
        query: TopologyQuery,
        result: MethodResult,
    ) -> None:
        """One structured slow-query record for a merged answer.  The
        span breakdown covers the per-shard ``shard.query`` spans (and
        their engine children) already gathered into this trace; the
        calibrator lives shard-side, so its version is not reported
        here."""
        ctx = current_trace()
        spans = obs_tracer().trace_spans(ctx.trace_id) if ctx is not None else []
        self.slow_query_log.maybe_record(
            elapsed_seconds=result.elapsed_seconds,
            method=name,
            query=query_summary(query),
            generation=generation,
            trace_id=ctx.trace_id if ctx is not None else None,
            plan={"choice": result.plan_choice},
            calibrator_version=None,
            spans=spans,
        )

    @staticmethod
    def _merge(
        plan: ScatterPlan,
        query: TopologyQuery,
        parts: Sequence[MethodResult],
    ) -> MethodResult:
        """Merge per-shard partial answers into the global answer.

        Ranked merge re-applies the engine's own ordering — score
        descending, tid descending on ties, cut at k (``Method._rank``)
        — over the union of the shards' global-score maps.  Exhaustive
        merge unions the routed tid subsets and sorts ascending, the
        exhaustive methods' output order.

        Which merge applies follows the *result* shape, not just the
        method class: the exhaustive methods rank-and-cut too when the
        query carries a ``k`` (they score the found set with the same
        global TopInfo scores), so any query with ``k`` set merges
        ranked."""
        if plan.ranked or query.k is not None:
            scored: Dict[int, float] = {}
            for part in parts:
                if part.scores is None:  # pragma: no cover - defensive
                    raise ShardError(
                        f"ranked method {plan.method} returned no scores"
                    )
                for tid, score in zip(part.tids, part.scores):
                    scored[tid] = score
            ordered = sorted(scored.items(), key=lambda kv: (-kv[1], -kv[0]))
            if query.k is not None:
                ordered = ordered[: query.k]
            tids = [tid for tid, _ in ordered]
            scores: Optional[List[float]] = [s for _, s in ordered]
        else:
            union = set()
            for part in parts:
                union.update(part.tids)
            tids = sorted(union)
            scores = None
        work: Dict[str, int] = {"shards": len(parts)}
        for part in parts:
            for counter, amount in part.work.items():
                work[counter] = work.get(counter, 0) + amount
        return MethodResult(
            method=plan.method,
            query=query,
            tids=tids,
            scores=scores,
            # The scatter overlaps shards, so the engine-time cost of
            # the merged answer is the slowest shard, not the sum.
            elapsed_seconds=max(p.elapsed_seconds for p in parts),
            work=work,
            plan=parts[0].plan,
            planning_seconds=max(p.planning_seconds for p in parts),
        )

    def explain(
        self, query: TopologyQuery, method: Optional[str] = None
    ) -> QueryPlan:
        """The plan shard 0 would execute for this query.

        Plans are per-shard (each shard's optimizer prices its own
        slice), but every shard sees the same query class and strategy
        menu, so shard 0's plan is the representative one."""
        name = (method or self.default_method).lower()
        with self._rw.read_locked():
            if not self._backends:
                raise TopologyError("coordinator is closed")
            return self._backends[0].call("explain", (query, name))

    # ------------------------------------------------------------------
    # Rebuild: all-or-nothing generation commit
    # ------------------------------------------------------------------
    def rebuild(
        self,
        entity_pairs: Optional[Sequence[Tuple[str, str]]] = None,
        **build_kwargs: Any,
    ) -> "BuildReport":
        """Rebuild the whole store and commit a new shard generation,
        without interrupting traffic.

        The offline phase runs on a clone of the (replicated) base
        relations from shard 0 — outside all locks, so queries keep
        flowing.  The successor is split into a fresh shard set under a
        new generation directory (verified lossless), a complete set of
        new backends is started and pinged, and only then does the
        exclusive swap publish backends + manifest + generation in one
        step.  On any failure the new backends are closed, the serving
        set is untouched, and the error propagates: there is no state
        in which a reader can see shards from two generations."""
        from repro.persist import load_system
        from repro.shard.build import split_system

        with self._writer_mutex:
            if self._closed:
                raise TopologyError("coordinator is closed")
            manifest = self._manifest
            # Only rebuild bumps the generation and the writer mutex
            # serializes rebuilds, so this read cannot go stale.
            next_generation = self._generation + 1
            reference = load_system(manifest.shard_path(0))
            pairs, kwargs = resolve_rebuild_config(
                reference, entity_pairs, build_kwargs
            )
            successor = reference.clone_base()
            report = successor.build(pairs, **kwargs)
            successor.restore_calibration(reference.calibrator.export_state())
            generation_dir = tempfile.mkdtemp(
                prefix=f"gen-{next_generation}-",
                dir=os.path.dirname(manifest.path),
            )
            try:
                split = split_system(
                    successor, manifest.count, generation_dir, verify=True
                )
                new_manifest = read_manifest(split.manifest_path)
                new_backends = self._start_backends(
                    new_manifest, next_generation
                )
            except BaseException:
                shutil.rmtree(generation_dir, ignore_errors=True)
                raise
            with self._rw.write_locked():
                old_backends = self._backends
                self._backends = new_backends
                self._manifest = new_manifest
                self._generation = next_generation
                self._shard_rows = list(split.row_histogram)
                self._cache.clear()
            for backend in old_backends:
                backend.close()
            # Reclaim the generation directory this coordinator created
            # for the now-retired set (never the operator's original).
            retired_dir, self._owned_dir = self._owned_dir, generation_dir
            if retired_dir is not None:
                shutil.rmtree(retired_dir, ignore_errors=True)
            with self._flight_lock:
                self._rebuilds += 1
            return report

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _bump_shard(self, index: int, counter: str) -> None:
        with self._counter_lock:
            self._shard_counters[index][counter] += 1

    def _record_latency(self, name: str, seconds: float) -> None:
        with self._latency_lock:
            stats = self._latency.get(name)
            if stats is None:
                stats = self._latency.setdefault(name, LatencyStats(name))
        stats.record(seconds)

    def shard_sections(self) -> List[Dict[str, Any]]:
        """Per-shard stats sections: identity, routed-row load, health
        counters — plus the set-level skew on each entry's parent list
        (see :meth:`stats`)."""
        manifest = self._manifest
        rows = list(self._shard_rows)
        with self._counter_lock:
            counters = [dict(c) for c in self._shard_counters]
        return [
            {
                "index": index,
                "path": manifest.shard_paths[index],
                "set_id": manifest.set_id,
                "scheme": manifest.scheme,
                "routed_rows": rows[index] if index < len(rows) else 0,
                **counters[index],
            }
            for index in range(manifest.count)
        ]

    def partition_histogram(self) -> Tuple[int, ...]:
        """Routed rows (AllTops + LeftTops) per shard."""
        return tuple(self._shard_rows)

    def partition_skew(self) -> float:
        """Max/mean of :meth:`partition_histogram` (1.0 = balanced)."""
        return histogram_skew(self._shard_rows)

    def stats(self) -> CoordinatorStats:
        with self._flight_lock:
            return CoordinatorStats(
                generation=self._generation,
                requests=self._requests,
                executions=self._executions,
                coalesced=self._coalesced,
                failures=self._failures,
                rebuilds=self._rebuilds,
                restores=0,
                in_flight=len(self._flights),
                result_cache=self._cache.stats(),
                # The coordinator does not plan; shards do.  A zeroed
                # plan-cache section keeps the stats wire shape stable.
                plan_cache=PlanCacheStats(
                    hits=0, misses=0, size=0, capacity=0, invalidations=0
                ),
                shards=self.shard_sections(),
                uptime_seconds=time.monotonic() - self._started_monotonic,
                started_generation=self._started_generation,
            )

    def shard_digests(self) -> List[str]:
        """Each live backend's order-sensitive store digest, gathered in
        parallel — the union of these (see :mod:`repro.shard.verify`)
        proves what the workers are actually serving."""
        with self._rw.read_locked():
            backends = self._backends
            calls = [backend.submit("digest") for backend in backends]
            return [call.result() for call in calls]

    def latency_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-method merged-result latency snapshots (slowest-shard
        engine time; cache hits do not contribute)."""
        with self._latency_lock:
            items = sorted(self._latency.items())
        return {name: stats.snapshot() for name, stats in items}

    def skew_report(self) -> Dict[str, Any]:
        """The /stats skew block: histogram, max/mean ratio, and the
        structured warning flag when the serving set is imbalanced.
        The structured log warning itself fires at most once per
        generation — a /stats poller watching a skewed set must not
        flood the logs on every read."""
        skew = self.partition_skew()
        warning = skew > SKEW_WARNING_THRESHOLD
        if warning:
            self._warn_skew_once(skew)
        return {
            "row_histogram": list(self._shard_rows),
            "skew": skew,
            "skew_warning": warning,
            "threshold": SKEW_WARNING_THRESHOLD,
        }

    def _warn_skew_once(self, skew: float) -> None:
        generation = self._generation
        with self._counter_lock:
            if self._skew_warned_generation == generation:
                return
            self._skew_warned_generation = generation
        _LOG.warning(
            "shard routing skew %.2fx exceeds %.1fx: %s",
            skew,
            SKEW_WARNING_THRESHOLD,
            json.dumps(
                {
                    "event": "shard_routing_skew",
                    "generation": generation,
                    "set_id": self._manifest.set_id,
                    "num_shards": self._manifest.count,
                    "skew": skew,
                    "row_histogram": list(self._shard_rows),
                },
                sort_keys=True,
            ),
        )

    def shard_obs_sections(self) -> List[Dict[str, Any]]:
        """Best-effort per-shard observability sections for `/metrics`:
        plan-cache counters and calibrator state scraped from each live
        worker.  A dead or slow shard reports ``{"up": False}`` instead
        of failing the scrape — metrics must stay readable exactly when
        shards are in trouble."""
        with self._rw.read_locked():
            backends = list(self._backends)
        calls: List[Tuple[int, Any]] = []
        for backend in backends:
            try:
                calls.append((backend.shard_index, backend.submit("obs_stats")))
            except ShardUnavailableError:
                calls.append((backend.shard_index, None))
        sections: List[Dict[str, Any]] = []
        for shard_index, call in calls:
            section: Dict[str, Any] = {"index": shard_index, "up": False}
            if call is not None:
                try:
                    section.update(call.result())
                    section["up"] = True
                except Exception as exc:
                    # Degrade, but never silently: a stamp mismatch or a
                    # worker crash must be visible in the scrape itself.
                    section["error"] = f"{type(exc).__name__}: {exc}"
            sections.append(section)
        return sections
