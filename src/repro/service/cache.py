"""A small LRU result cache with hit/miss accounting.

Online topology queries are highly repetitive (the same few entity-pair
/ constraint combinations dominate real traffic), so a bounded
most-recently-used cache in front of the engine removes most dispatch
work.  The cache is deliberately dumb: it never inspects values, and
consistency is the owner's job (:class:`~repro.service.TopologyService`
drops the whole cache whenever the underlying system is rebuilt).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional


@dataclass(frozen=True)
class CacheStats:
    """Counters snapshot: hits/misses accumulate across clears (they
    describe the service lifetime), size/capacity describe now."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when idle)."""
        total = self.requests
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with bounded capacity."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshing its recency), or ``None``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            capacity=self.capacity,
        )
