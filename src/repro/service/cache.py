"""A small thread-safe LRU result cache with hit/miss accounting.

Online topology queries are highly repetitive (the same few entity-pair
/ constraint combinations dominate real traffic), so a bounded
most-recently-used cache in front of the engine removes most dispatch
work.  The cache is deliberately dumb: it never inspects values, and
consistency is the owner's job (:class:`~repro.service.TopologyService`
and :class:`~repro.service.TopologyServer` drop the whole cache
whenever the underlying system is rebuilt).

Every operation — including the ``get`` that both reads the entry *and*
refreshes its recency *and* bumps a counter — holds one internal lock,
so concurrent readers never corrupt the recency list or lose counter
updates.

Misses are reported through a caller-supplied ``default`` (use the
module's :data:`MISSING` sentinel), never by value inspection: a cached
falsy value — an empty result list, ``0``, even a cached ``None`` — is
a hit like any other.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional


class _MissingType:
    """Sentinel type for :data:`MISSING` (one instance, falsy, opaque)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"

    def __bool__(self) -> bool:
        return False


#: Sentinel distinguishing "not cached" from any cached value (including
#: ``None``): pass it as ``default`` to :meth:`LRUCache.get` and compare
#: with ``is``.
MISSING = _MissingType()


@dataclass(frozen=True)
class CacheStats:
    """Counters snapshot: hits/misses accumulate across clears (they
    describe the service lifetime), size/capacity describe now."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when idle)."""
        total = self.requests
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with bounded capacity.

    Thread-safe: every method takes the internal lock, so the cache can
    sit in front of a shared engine with many reader threads."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default: Any = None) -> Optional[Any]:
        """The cached value (refreshing its recency), or ``default``.

        Pass :data:`MISSING` as ``default`` and compare with ``is`` to
        tell a miss apart from a cached falsy/``None`` value — the
        presence of the *key* decides hit vs. miss, never the value."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                size=len(self._entries),
                capacity=self.capacity,
            )
