"""The HTTP serving layer: a wire protocol for the topology server.

Framework-free by construction — stdlib plus the ASGI message protocol —
so the no-extra-deps CI matrix exercises the same code a production
deployment runs.  The pieces:

:mod:`~repro.service.http.app`
    :class:`TopologyHttpApp`, the ASGI application: routing, request
    validation, admission control, streaming, structured errors and
    per-request logs over one :class:`~repro.service.TopologyServer`.
:mod:`~repro.service.http.schemas`
    Wire schemas both ways: JSON -> typed query objects (with
    field-tagged 422s) and engine objects -> JSON.
:mod:`~repro.service.http.admission`
    The bounded-concurrency/bounded-queue/timeout gate behind 503 +
    ``Retry-After``.
:mod:`~repro.service.http.testclient`
    In-repo ASGI test client (no sockets, full message protocol).
:mod:`~repro.service.http.netserver`
    Stdlib asyncio HTTP/1.1 socket server (keep-alive + chunked
    streaming) and the optional uvicorn runner.

>>> from repro.service import TopologyServer
>>> from repro.service.http import HttpServerThread, create_app
>>> app = create_app(TopologyServer.from_snapshot("biozon.topo"))
>>> with HttpServerThread(app) as base_url:   # real socket, stdlib only
...     ...  # POST {base_url}/query
"""

from repro.service.http.admission import AdmissionGate, AdmissionRejected
from repro.service.http.app import TopologyHttpApp, create_app
from repro.service.http.netserver import AsgiHttpServer, HttpServerThread, serve_uvicorn
from repro.service.http.reqlog import LOGGER_NAME, RequestLogger
from repro.service.http.schemas import (
    MAX_BATCH,
    MAX_K,
    MAX_LENGTH_BOUND,
    RequestValidationError,
    parse_query_many_request,
    parse_query_request,
    parse_rebuild_request,
)
from repro.service.http.testclient import Response, TestClient

__all__ = [
    "AdmissionGate",
    "AdmissionRejected",
    "AsgiHttpServer",
    "HttpServerThread",
    "LOGGER_NAME",
    "MAX_BATCH",
    "MAX_K",
    "MAX_LENGTH_BOUND",
    "RequestValidationError",
    "RequestLogger",
    "Response",
    "TestClient",
    "TopologyHttpApp",
    "create_app",
    "parse_query_many_request",
    "parse_query_request",
    "parse_rebuild_request",
    "serve_uvicorn",
]
