"""The ASGI application fronting :class:`~repro.service.TopologyServer`.

``TopologyHttpApp`` is a framework-free ASGI 3 callable — stdlib plus
the ASGI message protocol, nothing else — so the no-extra-deps CI
matrix serves HTTP exactly like a production deployment would.  Run it
under any ASGI server (uvicorn works out of the box when installed),
under the in-repo stdlib socket server (:mod:`repro.service.http.netserver`),
or poke it in-process with the test client
(:mod:`repro.service.http.testclient`).

The endpoint surface::

    GET  /healthz        liveness + serving generation
    GET  /stats          one consistent counter snapshot (+ latency, + http)
    GET  /metrics        Prometheus text exposition (see .metricsview)
    GET  /trace/{id}     one trace's span tree with timings
    GET  /traces/recent  newest-first summaries of buffered traces
    POST /query          one topology query -> result JSON (chunk-streamed
                         when the tid list is large)
    POST /query_many     a batch -> NDJSON stream, one result line per
                         query in submission order + a summary line
    POST /explain        the plan a query would run, costs + rendered tree
    POST /rebuild        hot-swap rebuild; returns the new generation

Every request opens an ``http.request`` ingress span: the trace id it
mints (returned in the ``x-trace-id`` response header and the ``/query``
body) keys the whole request's span tree — engine spans on this process,
and, behind a :class:`~repro.service.coordinator.ShardCoordinator`,
the ``shard.query`` spans shipped back from the worker processes.
``GET /trace/{id}`` renders that tree.

Request handling is layered the same way for every endpoint: read the
body (bounded), parse + validate (:mod:`.schemas`), pass the admission
gate (:mod:`.admission`), run the blocking engine call on the worker
pool under the per-request timeout, serialize.  Every failure mode maps
to a structured error body ``{"error": {"code", "message", "details"}}``
with the taxonomy::

    400 invalid_json / invalid_request   body is not a JSON object
    404 not_found                        unknown path
    405 method_not_allowed               known path, wrong verb (+Allow)
    413 body_too_large                   body exceeds max_body_bytes
    422 validation_error                 schema-invalid fields (details[])
    422 unsupported_query                valid shape the serving store
                                         cannot answer (unbuilt pair,
                                         wrong l, ...)
    503 overloaded / timeout /           admission shed, per-request
        rebuild_in_progress              timeout, concurrent rebuild
                                         (all with Retry-After)
    500 internal                         anything else (sanitized)

The engine work runs on a private thread pool because the engine is
synchronous by design; the event loop only ever parses, validates, and
shuttles bytes.  Admission bounds how many engine calls are in flight,
so the pool can never be oversubscribed by traffic.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import ShardUnavailableError, TopologyError
from repro.obs import registry as obs_registry
from repro.obs import span as obs_span
from repro.obs import tracer as obs_tracer
from repro.service.http.admission import AdmissionGate, AdmissionRejected
from repro.service.http.metricsview import metrics_families
from repro.service.http.reqlog import RequestLog, RequestLogger
from repro.service.http.schemas import (
    RequestValidationError,
    parse_query_many_request,
    parse_query_request,
    parse_rebuild_request,
    plan_to_wire,
    result_to_wire,
    server_stats_to_wire,
)

__all__ = ["TopologyHttpApp", "create_app"]

# ASGI-protocol shapes (the framework-free equivalents of asgiref's
# Scope/Receive/Send).
Scope = Dict[str, Any]
Receive = Callable[[], Awaitable[Dict[str, Any]]]
Send = Callable[[Dict[str, Any]], Awaitable[None]]

_JSON_CONTENT = [(b"content-type", b"application/json")]
_NDJSON_CONTENT = [(b"content-type", b"application/x-ndjson")]
_PROMETHEUS_CONTENT = [
    (b"content-type", b"text/plain; version=0.0.4; charset=utf-8")
]


class _HttpError(Exception):
    """Internal: carries a ready-to-send error response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        details: Optional[List[Dict[str, str]]] = None,
        retry_after: Optional[int] = None,
        allow: Optional[str] = None,
    ) -> None:
        self.status = status
        self.code = code
        self.message = message
        self.details = details or []
        self.retry_after = retry_after
        self.allow = allow
        super().__init__(f"{status} {code}: {message}")


def _dumps(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _error_body(error: _HttpError) -> bytes:
    return _dumps(
        {
            "error": {
                "code": error.code,
                "message": error.message,
                "details": error.details,
            }
        }
    )


class TopologyHttpApp:
    """ASGI 3 application over one :class:`TopologyServer`.

    ``server`` only needs the TopologyServer surface actually used
    (``query``/``query_many``/``explain``/``rebuild``/``stats``/
    ``latency_stats``/``generation``), so tests can substitute a stub
    with controllable latency.

    ``max_concurrency``/``max_queue``/``queue_timeout`` parameterize the
    admission gate; ``request_timeout`` bounds each engine call (for
    ``/query_many``: each streamed slice); ``rebuild_timeout`` bounds a
    rebuild.  ``stream_chunk_rows`` is both the tid-array chunk size for
    large ``/query`` responses and the slice size for ``/query_many``
    streaming."""

    def __init__(
        self,
        server: Any,
        max_concurrency: int = 8,
        max_queue: int = 32,
        queue_timeout: float = 5.0,
        request_timeout: float = 30.0,
        rebuild_timeout: float = 600.0,
        max_body_bytes: int = 1 << 20,
        stream_chunk_rows: int = 256,
        logger: Optional[RequestLogger] = None,
    ) -> None:
        self.server = server
        self.gate = AdmissionGate(max_concurrency, max_queue, queue_timeout)
        self.request_timeout = request_timeout
        self.rebuild_timeout = rebuild_timeout
        self.max_body_bytes = max_body_bytes
        self.stream_chunk_rows = max(1, stream_chunk_rows)
        self.log = logger or RequestLogger()
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency + 2, thread_name_prefix="topology-http"
        )
        self._rebuild_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests_total = 0
        self._responses_by_class: Dict[str, int] = {}
        self._routes: Dict[str, Dict[str, Callable]] = {
            "/healthz": {"GET": self._handle_healthz},
            "/stats": {"GET": self._handle_stats},
            "/metrics": {"GET": self._handle_metrics},
            "/traces/recent": {"GET": self._handle_traces_recent},
            "/query": {"POST": self._handle_query},
            "/query_many": {"POST": self._handle_query_many},
            "/explain": {"POST": self._handle_explain},
            "/rebuild": {"POST": self._handle_rebuild},
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "TopologyHttpApp":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ASGI entry point
    # ------------------------------------------------------------------
    async def __call__(self, scope: Scope, receive: Receive, send: Send) -> None:
        if scope["type"] == "lifespan":
            await self._handle_lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")
        verb = scope["method"].upper()
        path = scope["path"]
        # The ingress span starts the trace; its id keys the request log
        # line, the x-trace-id header, and every child span (including
        # the ones shard workers ship back across the process boundary).
        with obs_span("http.request", ingress=True, verb=verb, path=path) as http_span:
            log = self.log.start(verb, path, trace_id=http_span.trace_id)
            with self._stats_lock:
                self._requests_total += 1
            try:
                try:
                    handler = self._resolve(verb, path)
                    await handler(scope, receive, send, log)
                except _HttpError as error:
                    await self._send_error(send, error, log)
                except AdmissionRejected as rejected:
                    await self._send_error(
                        send,
                        _HttpError(
                            503,
                            "overloaded",
                            f"server at capacity ({rejected.reason}); retry later",
                            retry_after=rejected.retry_after,
                        ),
                        log,
                    )
                except Exception as error:  # noqa: BLE001 - the 500 boundary
                    await self._send_error(
                        send,
                        _HttpError(500, "internal", f"internal error: {type(error).__name__}"),
                        log,
                    )
            finally:
                http_span.tag(status=log.status)
                status_class = f"{(log.status or 500) // 100}xx"
                with self._stats_lock:
                    self._responses_by_class[status_class] = (
                        self._responses_by_class.get(status_class, 0) + 1
                    )
                self.log.finish(log)

    async def _handle_lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    def _resolve(self, verb: str, path: str) -> Callable[..., Awaitable[None]]:
        route = self._routes.get(path)
        if route is None and path.startswith("/trace/") and len(path) > len("/trace/"):
            # The one parameterized route: /trace/{id}.  The id is
            # re-extracted from scope["path"] by the handler.
            route = {"GET": self._handle_trace}
        if route is None:
            raise _HttpError(404, "not_found", f"no such endpoint: {path}")
        handler = route.get(verb)
        if handler is None:
            raise _HttpError(
                405,
                "method_not_allowed",
                f"{verb} is not supported on {path}",
                allow=", ".join(sorted(route)),
            )
        return handler

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _read_body(self, receive: Receive) -> bytes:
        chunks: List[bytes] = []
        size = 0
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HttpError(400, "invalid_request", "client disconnected mid-request")
            body = message.get("body", b"")
            size += len(body)
            if size > self.max_body_bytes:
                raise _HttpError(
                    413,
                    "body_too_large",
                    f"request body exceeds {self.max_body_bytes} bytes",
                )
            chunks.append(body)
            if not message.get("more_body"):
                return b"".join(chunks)

    def _parse_json(self, body: bytes, required: bool = True) -> Any:
        if not body:
            if required:
                raise _HttpError(400, "invalid_json", "request body is empty")
            return None
        try:
            return json.loads(body)
        except ValueError as error:
            raise _HttpError(400, "invalid_json", f"body is not valid JSON: {error}") from None

    async def _run_blocking(self, fn: Callable[[], Any], timeout: float) -> Any:
        """Run ``fn`` on the worker pool, bounded by ``timeout``.

        On timeout the engine call keeps running on its pool thread —
        a synchronous engine call cannot be interrupted — but its
        admission slot is released only when it finishes, so a pile-up
        of timed-out work still sheds load at the gate instead of
        oversubscribing the pool.

        The call runs under a copy of the caller's ``contextvars``
        context: ``run_in_executor`` does not propagate context on its
        own, and without it the engine's spans would detach from the
        ``http.request`` trace."""
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(self._executor, lambda: ctx.run(fn)),
                timeout=timeout,
            )
        except asyncio.TimeoutError:
            raise _HttpError(
                503,
                "timeout",
                f"request exceeded the {timeout:g}s execution budget",
                retry_after=self.gate.retry_after,
            ) from None

    @staticmethod
    def _trace_headers(log: RequestLog) -> List[Tuple[bytes, bytes]]:
        if log.trace_id is None:
            return []
        return [(b"x-trace-id", log.trace_id.encode("ascii"))]

    async def _send_json(
        self, send: Send, payload: Any, log: RequestLog, status: int = 200
    ) -> None:
        body = _dumps(payload)
        log.status = status
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": _JSON_CONTENT
                + [(b"content-length", str(len(body)).encode())]
                + self._trace_headers(log),
            }
        )
        await send({"type": "http.response.body", "body": body})

    async def _send_error(self, send: Send, error: _HttpError, log: RequestLog) -> None:
        if log.status is not None:
            # The response already started (mid-stream failure): the
            # stream protocol has its own in-band error line; nothing
            # more can be sent on this exchange.
            return
        body = _error_body(error)
        headers = (
            _JSON_CONTENT
            + [(b"content-length", str(len(body)).encode())]
            + self._trace_headers(log)
        )
        if error.retry_after is not None:
            headers.append((b"retry-after", str(error.retry_after).encode()))
        if error.allow is not None:
            headers.append((b"allow", error.allow.encode()))
        log.status = error.status
        log.error_code = error.code
        await send({"type": "http.response.start", "status": error.status, "headers": headers})
        await send({"type": "http.response.body", "body": body})

    @staticmethod
    def _validation_error(error: RequestValidationError) -> _HttpError:
        return _HttpError(
            422,
            "validation_error",
            "request failed schema validation",
            details=[issue.to_wire() for issue in error.issues],
        )

    @staticmethod
    def _query_error(error: TopologyError) -> _HttpError:
        if isinstance(error, ShardUnavailableError):
            # A shard backend died or missed its reply deadline: the
            # request was fine, the serving set is degraded.  Client
            # contract: 503 + Retry-After, with the shard named so
            # operators can see *which* worker to look at.
            return _HttpError(
                503,
                "shard_unavailable",
                str(error),
                details=[
                    {"field": "shard", "message": str(error.shard_index)}
                ],
                retry_after=error.retry_after,
            )
        return _HttpError(422, "unsupported_query", str(error))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _handle_healthz(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        generation = self.server.generation
        log.generation = generation
        await self._send_json(send, {"status": "ok", "generation": generation}, log)

    async def _handle_stats(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        # ONE ServerStats snapshot feeds every counter in the payload;
        # a second read of the live server mid-traffic could break the
        # hits+misses==requests invariant the stress suite asserts.
        stats = self.server.stats()
        payload = server_stats_to_wire(stats, self.server.latency_stats())
        # Sharded backend (ShardCoordinator): surface the per-shard
        # sections and the routing-skew block alongside the shared
        # counter shape.  A plain TopologyServer has neither.
        shards = getattr(stats, "shards", None)
        if shards is not None:
            payload["shards"] = shards
            payload["uptime_seconds"] = stats.uptime_seconds
            payload["started_generation"] = stats.started_generation
            skew_report = getattr(self.server, "skew_report", None)
            if skew_report is not None:
                payload["sharding"] = skew_report()
        with self._stats_lock:
            http_section = {
                "requests_total": self._requests_total,
                "responses_by_class": dict(self._responses_by_class),
            }
        http_section["admission"] = self.gate.stats()
        payload["http"] = http_section
        log.generation = stats.generation
        await self._send_json(send, payload, log)

    async def _handle_metrics(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        with self._stats_lock:
            http_section = {
                "requests_total": self._requests_total,
                "responses_by_class": dict(self._responses_by_class),
            }
        gate_stats = self.gate.stats()
        tracer_stats = obs_tracer().stats()
        # The server snapshot (and, behind a coordinator, the worker
        # scrape) happens off the event loop: shard_obs_sections does
        # cross-process round trips.  No admission slot — the scrape
        # must answer exactly when the gate is saturated.
        text = await self._run_blocking(
            lambda: obs_registry().render(
                extra_families=metrics_families(
                    self.server, http_section, gate_stats, tracer_stats
                )
            ),
            self.request_timeout,
        )
        body = text.encode("utf-8")
        log.status = 200
        await send(
            {
                "type": "http.response.start",
                "status": 200,
                "headers": _PROMETHEUS_CONTENT
                + [(b"content-length", str(len(body)).encode())]
                + self._trace_headers(log),
            }
        )
        await send({"type": "http.response.body", "body": body})

    async def _handle_trace(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        trace_id = scope["path"][len("/trace/") :]
        tree = obs_tracer().trace_tree(trace_id)
        if tree is None:
            raise _HttpError(404, "not_found", f"no such trace: {trace_id}")
        await self._send_json(send, tree, log)

    async def _handle_traces_recent(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        tracer = obs_tracer()
        await self._send_json(
            send,
            {"traces": tracer.recent(), "tracer": tracer.stats()},
            log,
        )

    async def _handle_query(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        body = await self._read_body(receive)
        try:
            query, method = parse_query_request(self._parse_json(body))
        except RequestValidationError as error:
            raise self._validation_error(error) from None
        async with self._admitted(log):
            try:
                result = await self._run_blocking(
                    lambda: self.server.query(query, method=method),
                    self.request_timeout,
                )
            except TopologyError as error:
                raise self._query_error(error) from None
        wire = result_to_wire(result)
        wire["trace_id"] = log.trace_id
        log.generation = result.generation
        if wire["scores"] is None and len(wire["tids"]) > self.stream_chunk_rows:
            await self._stream_query_response(send, wire, log)
        else:
            await self._send_json(send, wire, log)

    async def _stream_query_response(
        self, send: Send, wire: Dict[str, Any], log: RequestLog
    ) -> None:
        """Large tid lists go out in chunks: the first frame carries the
        scalar fields and opens the ``tids`` array, each following frame
        is one chunk of tids, the last frame closes the JSON.  The
        concatenation is byte-for-byte a valid JSON document equal to
        the unstreamed response."""
        head = dict(wire)
        tids = head.pop("tids")
        prefix = _dumps(head)[:-1] + b', "tids": ['
        log.status = 200
        await send(
            {
                "type": "http.response.start",
                "status": 200,
                # no content-length: chunked
                "headers": _JSON_CONTENT + self._trace_headers(log),
            }
        )
        await send({"type": "http.response.body", "body": prefix, "more_body": True})
        log.streamed_chunks += 1
        for start in range(0, len(tids), self.stream_chunk_rows):
            chunk = tids[start : start + self.stream_chunk_rows]
            text = ", ".join(str(t) for t in chunk)
            if start:
                text = ", " + text
            await send(
                {
                    "type": "http.response.body",
                    "body": text.encode("ascii"),
                    "more_body": True,
                }
            )
            log.streamed_chunks += 1
        await send({"type": "http.response.body", "body": b"]}"})

    async def _handle_query_many(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        body = await self._read_body(receive)
        try:
            queries, method, parallel, mode = parse_query_many_request(
                self._parse_json(body)
            )
        except RequestValidationError as error:
            raise self._validation_error(error) from None
        slice_rows = self.stream_chunk_rows
        async with self._admitted(log):
            # The first slice runs BEFORE the response starts: a store
            # that cannot answer these queries (unbuilt pair, wrong l)
            # must surface as a real 422, not a broken stream.
            first = queries[:slice_rows]
            try:
                first_results = await self._run_blocking(
                    lambda: self.server.query_many(
                        first, method=method, parallel=parallel, mode=mode
                    ),
                    self.request_timeout,
                )
            except TopologyError as error:
                raise self._query_error(error) from None
            log.status = 200
            await send(
                {
                    "type": "http.response.start",
                    "status": 200,
                    "headers": _NDJSON_CONTENT + self._trace_headers(log),
                }
            )
            count = 0
            generations = set()
            failed: Optional[Dict[str, Any]] = None
            results = first_results
            start = 0
            while True:
                lines = []
                for offset, result in enumerate(results):
                    line = result_to_wire(result)
                    line["index"] = start + offset
                    generations.add(result.generation)
                    lines.append(_dumps(line))
                    count += 1
                if lines:
                    await send(
                        {
                            "type": "http.response.body",
                            "body": b"\n".join(lines) + b"\n",
                            "more_body": True,
                        }
                    )
                    log.streamed_chunks += 1
                start += len(results)
                if start >= len(queries):
                    break
                chunk = queries[start : start + slice_rows]
                try:
                    results = await self._run_blocking(
                        lambda c=chunk: self.server.query_many(
                            c, method=method, parallel=parallel, mode=mode
                        ),
                        self.request_timeout,
                    )
                except (_HttpError, TopologyError) as error:
                    # Mid-stream failure: the status line is gone, so
                    # the error travels in-band as the summary line.
                    if isinstance(error, _HttpError):
                        code, message = error.code, error.message
                    else:
                        mapped = self._query_error(error)
                        code, message = mapped.code, mapped.message
                    failed = {"code": code, "message": message}
                    log.error_code = code
                    break
            summary: Dict[str, Any] = {
                "done": failed is None,
                "count": count,
                "generations": sorted(g for g in generations if g is not None),
            }
            if failed is not None:
                summary["error"] = failed
            log.generation = max(
                (g for g in generations if g is not None), default=None
            )
            await send(
                {
                    "type": "http.response.body",
                    "body": _dumps(summary) + b"\n",
                }
            )

    async def _handle_explain(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        body = await self._read_body(receive)
        try:
            query, method = parse_query_request(self._parse_json(body))
        except RequestValidationError as error:
            raise self._validation_error(error) from None
        async with self._admitted(log):
            try:
                plan = await self._run_blocking(
                    lambda: self.server.explain(query, method=method),
                    self.request_timeout,
                )
            except TopologyError as error:
                raise self._query_error(error) from None
        generation = self.server.generation
        log.generation = generation
        wire = plan_to_wire(plan, query)
        wire["generation"] = generation
        await self._send_json(send, wire, log)

    async def _handle_rebuild(
        self, scope: Scope, receive: Receive, send: Send, log: RequestLog
    ) -> None:
        body = await self._read_body(receive)
        try:
            kwargs = parse_rebuild_request(self._parse_json(body, required=False))
        except RequestValidationError as error:
            raise self._validation_error(error) from None
        if not self._rebuild_lock.acquire(blocking=False):
            raise _HttpError(
                503,
                "rebuild_in_progress",
                "another rebuild is already running",
                retry_after=max(1, round(self.rebuild_timeout / 10)),
            )
        try:
            previous = self.server.generation
            try:
                report = await self._run_blocking(
                    lambda: self.server.rebuild(**kwargs), self.rebuild_timeout
                )
            except TopologyError as error:
                raise self._query_error(error) from None
        finally:
            self._rebuild_lock.release()
        generation = self.server.generation
        log.generation = generation
        await self._send_json(
            send,
            {
                "generation": generation,
                "previous_generation": previous,
                "elapsed_seconds": report.elapsed_seconds,
            },
            log,
        )

    # ------------------------------------------------------------------
    def _admitted(self, log: RequestLog) -> "_Admission":
        """Admission context that records queue wait into the log."""
        return _Admission(self.gate, log)


class _Admission:
    """One admission slot, taken on ``__aenter__`` and released on exit;
    the queue wait lands in the request log."""

    __slots__ = ("_gate", "_log")

    def __init__(self, gate: AdmissionGate, log: RequestLog) -> None:
        self._gate = gate
        self._log = log

    async def __aenter__(self) -> "_Admission":
        start = time.perf_counter()
        await self._gate.acquire()
        self._log.queue_seconds = time.perf_counter() - start
        return self

    async def __aexit__(self, *exc: Any) -> None:
        self._gate.release()


def create_app(server: Any, **kwargs: Any) -> TopologyHttpApp:
    """Build the ASGI app over a built/restored ``TopologyServer``."""
    return TopologyHttpApp(server, **kwargs)
