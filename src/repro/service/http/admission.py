"""Admission control: bounded concurrency with a bounded FIFO wait queue.

The HTTP layer must shed load it cannot serve rather than let latency
grow without bound: at most ``max_concurrency`` requests execute at
once, at most ``max_queue`` more wait in arrival order, and no request
waits longer than ``queue_timeout`` seconds.  Everything past those
bounds is rejected *immediately* with enough structure for the app to
answer ``503`` + ``Retry-After`` — the closed-loop benchmark measures
exactly this boundary, and the open-loop section counts the shed.

The gate is **event-loop-agnostic** on purpose: its bookkeeping lives
behind a plain ``threading.Lock`` and each waiter parks on an
``asyncio.Event`` belonging to *its own* loop, signalled cross-thread
via ``call_soon_threadsafe``.  That way one gate serves requests from
any number of event loops (the in-repo test client runs one background
loop; ``asyncio.run``-per-request unit tests run many) without the
"future attached to a different loop" failure mode of module-level
``asyncio.Semaphore``.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Deque, Dict

__all__ = ["AdmissionGate", "AdmissionRejected"]


class AdmissionRejected(Exception):
    """The gate refused this request.

    ``reason`` is ``"queue_full"`` (the wait queue was already at
    capacity on arrival) or ``"timeout"`` (the request waited its full
    ``queue_timeout`` without a slot opening).  ``retry_after`` is the
    whole-second hint for the ``Retry-After`` header."""

    def __init__(self, reason: str, retry_after: int) -> None:
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(f"admission rejected: {reason}")


class _Waiter:
    """One queued request.  State transitions happen under the gate
    lock; the event is only ever *set* (never awaited) cross-thread."""

    __slots__ = ("loop", "event", "admitted", "abandoned")

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop
        self.event = asyncio.Event()
        self.admitted = False
        self.abandoned = False


class AdmissionGate:
    """``async with gate:`` around the work each request performs."""

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue: int = 32,
        queue_timeout: float = 5.0,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._lock = threading.Lock()
        self._active = 0
        self._waiters: Deque[_Waiter] = deque()
        self._admitted = 0
        self._rejected_queue_full = 0
        self._rejected_timeout = 0

    # ------------------------------------------------------------------
    @property
    def retry_after(self) -> int:
        """Whole seconds a rejected client should back off: the queue
        drain time is unknowable here, so the queue timeout is the
        honest upper bound on how stale our 'busy' verdict can be."""
        return max(1, round(self.queue_timeout))

    async def acquire(self) -> None:
        loop = asyncio.get_running_loop()
        with self._lock:
            if self._active < self.max_concurrency:
                self._active += 1
                self._admitted += 1
                return
            if len(self._waiters) >= self.max_queue:
                self._rejected_queue_full += 1
                raise AdmissionRejected("queue_full", self.retry_after)
            waiter = _Waiter(loop)
            self._waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter.event.wait(), timeout=self.queue_timeout)
        except asyncio.TimeoutError:
            with self._lock:
                if waiter.admitted:
                    # A slot was handed over in the same instant the
                    # timeout fired; the hand-off wins — we hold it.
                    self._admitted += 1
                    return
                waiter.abandoned = True
                try:
                    self._waiters.remove(waiter)
                except ValueError:  # pragma: no cover - defensive
                    pass
                self._rejected_timeout += 1
            raise AdmissionRejected("timeout", self.retry_after) from None
        except asyncio.CancelledError:
            # The request itself was cancelled (client gone, outer
            # timeout).  If a slot was already handed to us we must put
            # it back, otherwise it would leak with no owner to release.
            with self._lock:
                owned = waiter.admitted
                waiter.abandoned = not owned
                if not owned:
                    try:
                        self._waiters.remove(waiter)
                    except ValueError:  # pragma: no cover - defensive
                        pass
            if owned:
                self.release()
            raise
        with self._lock:
            self._admitted += 1

    def release(self) -> None:
        """Free a slot: hand it to the oldest live waiter, else retire it."""
        with self._lock:
            while self._waiters:
                waiter = self._waiters.popleft()
                if waiter.abandoned:
                    continue
                waiter.admitted = True
                try:
                    waiter.loop.call_soon_threadsafe(waiter.event.set)
                except RuntimeError:  # waiter's loop already closed
                    waiter.admitted = False
                    waiter.abandoned = True
                    continue
                # Slot handed over: _active is unchanged (the waiter now
                # owns the slot this releaser gave up).
                return
            self._active -= 1

    async def __aenter__(self) -> "AdmissionGate":
        await self.acquire()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        self.release()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "active": self._active,
                "waiting": len(self._waiters),
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
                "admitted": self._admitted,
                "rejected_queue_full": self._rejected_queue_full,
                "rejected_timeout": self._rejected_timeout,
            }
