"""Structured per-request logging for the HTTP layer.

One JSON line per completed request on the ``repro.http`` logger:
trace id, verb, path, status, error code (when the response was an
error body), wall-clock latency, the serving generation that answered,
and how long admission queued the request.  The line is machine-first —
the benchmark and operators grep/parse it — so the record is rendered
as compact JSON, not prose.

Requests are identified by their **trace id** (the same id the span
buffer, the ``x-trace-id`` response header, and slow-query records
carry), not a per-process counter: monotonic ids collide across the
coordinator and shard-worker processes and reset on every restart,
while a trace id joins one request's records across every process that
touched it.

The logger propagates like any stdlib logger: tests capture it with a
handler, deployments route it wherever their logging config says.
Nothing here writes to a file or configures handlers on import.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Dict, Optional

__all__ = ["LOGGER_NAME", "RequestLog", "RequestLogger"]

LOGGER_NAME = "repro.http"


class RequestLog:
    """Mutable record for one in-flight request; emitted on finish."""

    __slots__ = (
        "trace_id",
        "verb",
        "path",
        "status",
        "error_code",
        "generation",
        "queue_seconds",
        "streamed_chunks",
        "_start",
    )

    def __init__(self, trace_id: Optional[str], verb: str, path: str) -> None:
        self.trace_id = trace_id
        self.verb = verb
        self.path = path
        self.status: Optional[int] = None
        self.error_code: Optional[str] = None
        self.generation: Optional[int] = None
        self.queue_seconds = 0.0
        self.streamed_chunks = 0
        self._start = time.perf_counter()

    def to_record(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "verb": self.verb,
            "path": self.path,
            "status": self.status,
            "error_code": self.error_code,
            "generation": self.generation,
            "latency_ms": round((time.perf_counter() - self._start) * 1e3, 3),
            "queue_ms": round(self.queue_seconds * 1e3, 3),
            "streamed_chunks": self.streamed_chunks,
        }


class RequestLogger:
    """Emits the one-line-per-request JSON records."""

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self._logger = logger or logging.getLogger(LOGGER_NAME)

    def start(
        self, verb: str, path: str, trace_id: Optional[str] = None
    ) -> RequestLog:
        return RequestLog(trace_id, verb, path)

    def finish(self, log: RequestLog) -> None:
        if self._logger.isEnabledFor(logging.INFO):
            self._logger.info(json.dumps(log.to_record(), sort_keys=True))
