"""Structured per-request logging for the HTTP layer.

One JSON line per completed request on the ``repro.http`` logger:
request id, verb, path, status, error code (when the response was an
error body), wall-clock latency, the serving generation that answered,
and how long admission queued the request.  The line is machine-first —
the benchmark and operators grep/parse it — so the record is rendered
as compact JSON, not prose.

The logger propagates like any stdlib logger: tests capture it with a
handler, deployments route it wherever their logging config says.
Nothing here writes to a file or configures handlers on import.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Any, Dict, Optional

__all__ = ["LOGGER_NAME", "RequestLog", "RequestLogger"]

LOGGER_NAME = "repro.http"


class RequestLog:
    """Mutable record for one in-flight request; emitted on finish."""

    __slots__ = (
        "request_id",
        "verb",
        "path",
        "status",
        "error_code",
        "generation",
        "queue_seconds",
        "streamed_chunks",
        "_start",
    )

    def __init__(self, request_id: int, verb: str, path: str) -> None:
        self.request_id = request_id
        self.verb = verb
        self.path = path
        self.status: Optional[int] = None
        self.error_code: Optional[str] = None
        self.generation: Optional[int] = None
        self.queue_seconds = 0.0
        self.streamed_chunks = 0
        self._start = time.perf_counter()

    def to_record(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "verb": self.verb,
            "path": self.path,
            "status": self.status,
            "error_code": self.error_code,
            "generation": self.generation,
            "latency_ms": round((time.perf_counter() - self._start) * 1e3, 3),
            "queue_ms": round(self.queue_seconds * 1e3, 3),
            "streamed_chunks": self.streamed_chunks,
        }


class RequestLogger:
    """Allocates monotonically increasing request ids and emits the
    one-line-per-request JSON records."""

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self._logger = logger or logging.getLogger(LOGGER_NAME)
        self._lock = threading.Lock()
        self._next_id = 0

    def start(self, verb: str, path: str) -> RequestLog:
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
        return RequestLog(request_id, verb, path)

    def finish(self, log: RequestLog) -> None:
        if self._logger.isEnabledFor(logging.INFO):
            self._logger.info(json.dumps(log.to_record(), sort_keys=True))
