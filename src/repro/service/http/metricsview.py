"""Build the ``GET /metrics`` exposition from ONE stats snapshot.

The scattered counters this system already keeps — result-cache and
plan-cache hit rates, calibrator state, admission gate, per-shard
routing and failure-domain counters, latency histograms, tracer ring
occupancy — are folded into Prometheus *families* behind stable dotted
names (``repro.cache.hits`` → ``repro_cache_hits``).  Everything is
derived from a single ``server.stats()`` snapshot plus one read of each
independent component, the same torn-read discipline ``/stats`` follows:
a scrape must never show ``hits + misses != requests`` because the two
numbers came from different instants.

Against a :class:`~repro.service.coordinator.ShardCoordinator` the
scrape also merges the shard workers' own observability sections
(plan-cache counters, calibrator version, generation) labeled by shard
index, with ``repro_shard_up`` marking workers that answered — a dead
shard flips its gauge to 0 instead of failing the scrape.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs import LATENCY_BUCKETS
from repro.obs.metrics import Sample, _format_value

__all__ = ["metrics_families"]

Family = Tuple[str, str, str, List[Sample]]


def _single(name: str, kind: str, help_text: str, value: float) -> Family:
    return (name, kind, help_text, [(name, {}, float(value))])


def _labeled(
    name: str, kind: str, help_text: str, samples: List[Tuple[Dict[str, str], float]]
) -> Family:
    return (name, kind, help_text, [(name, labels, float(v)) for labels, v in samples])


def _latency_family(latency: Dict[str, Dict[str, Any]]) -> Family:
    """Per-method engine-latency histogram from the count-preserving
    buckets ``LatencyStats.snapshot()`` carries (cumulative ``le``
    series + ``_sum`` + ``_count``, Prometheus-style)."""
    name = "repro.query.latency_seconds"
    samples: List[Sample] = []
    for method, snap in sorted(latency.items()):
        buckets = snap.get("buckets") or {}
        bounds = buckets.get("le") or list(LATENCY_BUCKETS)
        counts = buckets.get("counts") or [0] * (len(bounds) + 1)
        running = 0
        for bound, count in zip(bounds, counts):
            running += count
            samples.append(
                (
                    name + "_bucket",
                    {"method": method, "le": _format_value(float(bound))},
                    float(running),
                )
            )
        running += counts[-1] if len(counts) > len(bounds) else 0
        samples.append((name + "_bucket", {"method": method, "le": "+Inf"}, float(running)))
        samples.append((name + "_sum", {"method": method}, float(snap.get("total_seconds", 0.0))))
        samples.append((name + "_count", {"method": method}, float(snap.get("count", 0))))
    if not samples:
        return (name, "histogram", "Engine execution latency by method.", [])
    return (name, "histogram", "Engine execution latency by method.", samples)


def _shard_families(stats: Any, server: Any) -> List[Family]:
    """Per-shard routing/health gauges plus the merged worker-side
    observability sections (best-effort: a dead worker is ``up 0``)."""
    shards = getattr(stats, "shards", None)
    if shards is None:
        return []
    families: List[Family] = []
    routed: List[Tuple[Dict[str, str], float]] = []
    calls: List[Tuple[Dict[str, str], float]] = []
    failures: List[Tuple[Dict[str, str], float]] = []
    timeouts: List[Tuple[Dict[str, str], float]] = []
    for section in shards:
        label = {"shard": str(section.get("index"))}
        routed.append((label, section.get("routed_rows", 0)))
        calls.append((label, section.get("calls", 0)))
        failures.append((label, section.get("failures", 0)))
        timeouts.append((label, section.get("timeouts", 0)))
    families.append(
        _labeled("repro.shard.routed_rows", "gauge", "Rows routed to each shard.", routed)
    )
    families.append(_labeled("repro.shard.calls", "counter", "Scatter calls per shard.", calls))
    families.append(
        _labeled("repro.shard.failures", "counter", "Failed scatter calls per shard.", failures)
    )
    families.append(
        _labeled(
            "repro.shard.timeouts", "counter", "Timed-out scatter calls per shard.", timeouts
        )
    )
    partition_skew = getattr(server, "partition_skew", None)
    if callable(partition_skew):
        families.append(
            _single(
                "repro.shard.skew",
                "gauge",
                "Routing skew (max/mean routed rows; 1.0 = balanced).",
                partition_skew(),
            )
        )
    obs_sections = getattr(server, "shard_obs_sections", None)
    if callable(obs_sections):
        up: List[Tuple[Dict[str, str], float]] = []
        generation: List[Tuple[Dict[str, str], float]] = []
        plan_cache: Dict[str, List[Tuple[Dict[str, str], float]]] = {
            "hits": [],
            "misses": [],
            "invalidations": [],
            "size": [],
        }
        calibrator_version: List[Tuple[Dict[str, str], float]] = []
        for section in obs_sections():
            label = {"shard": str(section.get("index"))}
            alive = bool(section.get("up"))
            up.append((label, 1.0 if alive else 0.0))
            if not alive:
                continue
            generation.append((label, section.get("generation", 0)))
            pc = section.get("plan_cache") or {}
            for key in plan_cache:
                plan_cache[key].append((label, pc.get(key, 0)))
            cal = section.get("calibrator") or {}
            calibrator_version.append((label, cal.get("version", 0)))
        families.append(
            _labeled("repro.shard.up", "gauge", "1 if the shard worker answered the scrape.", up)
        )
        if generation:
            families.append(
                _labeled(
                    "repro.shard.generation", "gauge", "Serving generation per worker.", generation
                )
            )
        for key, kind in (
            ("hits", "counter"),
            ("misses", "counter"),
            ("invalidations", "counter"),
            ("size", "gauge"),
        ):
            if plan_cache[key]:
                families.append(
                    _labeled(
                        f"repro.shard.plan_cache.{key}",
                        kind,
                        f"Worker-side plan cache {key} per shard.",
                        plan_cache[key],
                    )
                )
        if calibrator_version:
            families.append(
                _labeled(
                    "repro.shard.calibrator.version",
                    "gauge",
                    "Worker-side cost calibrator version per shard.",
                    calibrator_version,
                )
            )
    return families


def metrics_families(
    server: Any,
    http_section: Dict[str, Any],
    gate_stats: Dict[str, int],
    tracer_stats: Dict[str, Any],
) -> List[Family]:
    """Every `/metrics` family, from one ``server.stats()`` snapshot."""
    stats = server.stats()
    latency = server.latency_stats()
    families: List[Family] = [
        _single("repro.server.generation", "gauge", "Serving generation.", stats.generation),
        _single("repro.server.requests", "counter", "Query requests served.", stats.requests),
        _single(
            "repro.server.executions", "counter", "Engine executions dispatched.", stats.executions
        ),
        _single(
            "repro.server.coalesced",
            "counter",
            "Requests coalesced onto an in-flight execution.",
            stats.coalesced,
        ),
        _single("repro.server.failures", "counter", "Failed executions.", stats.failures),
        _single("repro.server.rebuilds", "counter", "Committed rebuilds.", stats.rebuilds),
        _single("repro.server.restores", "counter", "Snapshot restores.", stats.restores),
        _single("repro.server.in_flight", "gauge", "Executions in flight.", stats.in_flight),
        _single("repro.cache.hits", "counter", "Result cache hits.", stats.result_cache.hits),
        _single("repro.cache.misses", "counter", "Result cache misses.", stats.result_cache.misses),
        _single("repro.cache.size", "gauge", "Result cache entries.", stats.result_cache.size),
        _single(
            "repro.cache.capacity", "gauge", "Result cache capacity.", stats.result_cache.capacity
        ),
        _single("repro.plan_cache.hits", "counter", "Plan cache hits.", stats.plan_cache.hits),
        _single(
            "repro.plan_cache.misses", "counter", "Plan cache misses.", stats.plan_cache.misses
        ),
        _single(
            "repro.plan_cache.invalidations",
            "counter",
            "Plan cache invalidations (rebuild/calibration).",
            stats.plan_cache.invalidations,
        ),
        _single("repro.plan_cache.size", "gauge", "Plan cache entries.", stats.plan_cache.size),
        _single(
            "repro.plan_cache.capacity", "gauge", "Plan cache capacity.", stats.plan_cache.capacity
        ),
        _latency_family(latency),
    ]
    uptime = getattr(stats, "uptime_seconds", None)
    if uptime is not None:
        families.append(
            _single("repro.server.uptime_seconds", "gauge", "Seconds serving.", uptime)
        )
        families.append(
            _single(
                "repro.server.started_generation",
                "gauge",
                "Generation this process started on.",
                getattr(stats, "started_generation", 1),
            )
        )
    calibration_stats = getattr(server, "calibration_stats", None)
    if callable(calibration_stats):
        snap = calibration_stats()
        families.append(
            _single(
                "repro.calibrator.version",
                "gauge",
                "Cost calibrator version (bumps on refit).",
                snap.get("version", 0),
            )
        )
        strategies = snap.get("strategies") or {}
        if strategies:
            families.append(
                _labeled(
                    "repro.calibrator.observations",
                    "counter",
                    "Calibration observations per strategy.",
                    [
                        ({"strategy": name}, fit.get("count", 0))
                        for name, fit in sorted(strategies.items())
                    ],
                )
            )
            families.append(
                _labeled(
                    "repro.calibrator.factor",
                    "gauge",
                    "Learned cost factor per strategy.",
                    [
                        ({"strategy": name}, fit.get("factor", 1.0))
                        for name, fit in sorted(strategies.items())
                    ],
                )
            )
    families.extend(_shard_families(stats, server))
    families.append(
        _single(
            "repro.http.requests",
            "counter",
            "HTTP requests received.",
            http_section.get("requests_total", 0),
        )
    )
    families.append(
        _labeled(
            "repro.http.responses",
            "counter",
            "HTTP responses by status class.",
            [
                ({"class": cls}, count)
                for cls, count in sorted(
                    (http_section.get("responses_by_class") or {}).items()
                )
            ],
        )
    )
    for key, kind, help_text in (
        ("active", "gauge", "Requests holding an admission slot."),
        ("waiting", "gauge", "Requests queued at the admission gate."),
        ("max_concurrency", "gauge", "Admission concurrency limit."),
        ("max_queue", "gauge", "Admission queue limit."),
        ("admitted", "counter", "Requests admitted."),
        ("rejected_queue_full", "counter", "Requests shed: queue full."),
        ("rejected_timeout", "counter", "Requests shed: queue timeout."),
    ):
        families.append(
            _single(f"repro.http.admission.{key}", kind, help_text, gate_stats.get(key, 0))
        )
    families.append(
        _single(
            "repro.trace.enabled",
            "gauge",
            "1 if tracing is enabled in this process.",
            1.0 if tracer_stats.get("enabled") else 0.0,
        )
    )
    families.append(
        _single(
            "repro.trace.buffered_traces",
            "gauge",
            "Traces held in the ring buffer.",
            tracer_stats.get("traces", 0),
        )
    )
    families.append(
        _single(
            "repro.trace.spans_recorded",
            "counter",
            "Spans recorded since start.",
            tracer_stats.get("spans_recorded", 0),
        )
    )
    families.append(
        _single(
            "repro.trace.spans_dropped",
            "counter",
            "Spans dropped (per-trace cap).",
            tracer_stats.get("spans_dropped", 0),
        )
    )
    return families
