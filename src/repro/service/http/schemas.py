"""Wire schemas for the HTTP serving layer: validation + serialization.

The request side turns untrusted JSON into the engine's typed objects
(:class:`~repro.core.query.TopologyQuery` and friends) or into a
:class:`RequestValidationError` carrying *every* problem found, each
tagged with the JSON-path of the offending field — the structured 422
body the contract tests pin.  Validation is strict: unknown fields are
rejected (a typo like ``"raking"`` must fail loudly, not silently fall
back to a default), every bound is checked here so the engine below
only ever sees well-formed queries, and nesting depth is capped so a
hostile payload cannot recurse the parser to death.

The response side is the inverse: plain-dict projections of
:class:`~repro.core.methods.base.MethodResult`,
:class:`~repro.core.plan.QueryPlan` and the server counter snapshots,
containing only JSON-native types.  Everything the contract tests pin
lives here, in one place, so the wire format cannot drift per-endpoint.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.methods import METHOD_CLASSES
from repro.core.plan import PlanCacheStats, QueryPlan
from repro.core.query import (
    AttributeConstraint,
    ConjunctionConstraint,
    Constraint,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
)
from repro.core.ranking import RANKING_SCHEMES
from repro.service.cache import CacheStats

__all__ = [
    "MAX_BATCH",
    "MAX_K",
    "MAX_LENGTH_BOUND",
    "MAX_PARALLEL",
    "RequestValidationError",
    "ValidationIssue",
    "constraint_to_wire",
    "parse_query_many_request",
    "parse_query_request",
    "parse_rebuild_request",
    "plan_to_wire",
    "result_to_wire",
    "server_stats_to_wire",
]

# Hard bounds on request parameters.  They are generous for real use
# and exist so out-of-range values die at the door with a field-tagged
# 422 instead of as an arbitrary engine failure (or a giant top-k sort).
MAX_K = 10_000
MAX_LENGTH_BOUND = 8
MAX_BATCH = 1_024
MAX_PARALLEL = 64
MAX_CONSTRAINT_DEPTH = 8
_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class ValidationIssue:
    """One problem with one field: ``field`` is a JSON-path-ish locator
    (``"constraint1.parts[2].column"``), ``message`` says what is wrong."""

    __slots__ = ("field", "message")

    def __init__(self, field: str, message: str) -> None:
        self.field = field
        self.message = message

    def to_wire(self) -> Dict[str, str]:
        return {"field": self.field, "message": self.message}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValidationIssue({self.field!r}, {self.message!r})"


class RequestValidationError(Exception):
    """The request body failed schema validation (HTTP 422).

    Carries every issue found, not just the first — a client fixing a
    request should not have to replay it once per mistake."""

    def __init__(self, issues: List[ValidationIssue]) -> None:
        self.issues = issues
        super().__init__("; ".join(f"{i.field}: {i.message}" for i in issues))


class _Issues:
    """Accumulator so one pass reports every problem."""

    def __init__(self) -> None:
        self.items: List[ValidationIssue] = []

    def add(self, field: str, message: str) -> None:
        self.items.append(ValidationIssue(field, message))

    def raise_if_any(self) -> None:
        if self.items:
            raise RequestValidationError(self.items)


def _require_object(payload: Any, field: str, issues: _Issues) -> Optional[dict]:
    if isinstance(payload, dict):
        return payload
    issues.add(field, f"expected a JSON object, got {_type_name(payload)}")
    return None


def _type_name(value: Any) -> str:
    if value is None:
        return "null"
    return {
        bool: "boolean",
        int: "integer",
        float: "number",
        str: "string",
        list: "array",
        dict: "object",
    }.get(type(value), type(value).__name__)


def _check_unknown(payload: dict, allowed: Tuple[str, ...], prefix: str, issues: _Issues) -> None:
    for key in payload:
        if key not in allowed:
            issues.add(
                f"{prefix}{key}" if prefix else str(key),
                f"unknown field (allowed: {', '.join(sorted(allowed))})",
            )


def _parse_str(payload: dict, key: str, prefix: str, issues: _Issues) -> Optional[str]:
    value = payload.get(key)
    if isinstance(value, str) and value.strip():
        return value
    if key not in payload:
        issues.add(f"{prefix}{key}", "required field is missing")
    else:
        issues.add(f"{prefix}{key}", "expected a non-empty string")
    return None


def _parse_bounded_int(
    value: Any, field: str, issues: _Issues, low: int, high: int
) -> Optional[int]:
    # bool is an int subclass; JSON true/false must not pass as 1/0.
    if not isinstance(value, int) or isinstance(value, bool):
        issues.add(field, f"expected an integer, got {_type_name(value)}")
        return None
    if not (low <= value <= high):
        issues.add(field, f"must be between {low} and {high}, got {value}")
        return None
    return value


# ----------------------------------------------------------------------
# Constraints
# ----------------------------------------------------------------------
def parse_constraint(
    payload: Any, field: str, issues: _Issues, depth: int = 0
) -> Constraint:
    """One wire constraint -> engine :class:`Constraint`.

    Wire forms (discriminated on ``kind``)::

        {"kind": "none"}
        {"kind": "keyword", "column": "DESC", "keyword": "kinase"}
        {"kind": "attribute", "column": "TYPE", "value": "mRNA", "op": "="}
        {"kind": "and", "parts": [<constraint>, ...]}

    A missing constraint (handled by the callers) means ``none``."""
    fallback = NoConstraint()
    if depth > MAX_CONSTRAINT_DEPTH:
        issues.add(field, f"constraints nest deeper than {MAX_CONSTRAINT_DEPTH}")
        return fallback
    obj = _require_object(payload, field, issues)
    if obj is None:
        return fallback
    kind = obj.get("kind")
    if not isinstance(kind, str):
        issues.add(f"{field}.kind", "required field is missing or not a string")
        return fallback
    prefix = f"{field}."
    if kind == "none":
        _check_unknown(obj, ("kind",), prefix, issues)
        return fallback
    if kind == "keyword":
        _check_unknown(obj, ("kind", "column", "keyword"), prefix, issues)
        column = _parse_str(obj, "column", prefix, issues)
        keyword = _parse_str(obj, "keyword", prefix, issues)
        if column is None or keyword is None:
            return fallback
        return KeywordConstraint(column, keyword)
    if kind == "attribute":
        _check_unknown(obj, ("kind", "column", "value", "op"), prefix, issues)
        column = _parse_str(obj, "column", prefix, issues)
        op = obj.get("op", "=")
        if op not in _COMPARISON_OPS:
            issues.add(f"{prefix}op", f"must be one of {', '.join(_COMPARISON_OPS)}")
            op = "="
        value = obj.get("value")
        if "value" not in obj:
            issues.add(f"{prefix}value", "required field is missing")
            return fallback
        if not isinstance(value, (str, int, float)) or isinstance(value, bool):
            issues.add(
                f"{prefix}value",
                f"expected a string or number, got {_type_name(value)}",
            )
            return fallback
        if column is None:
            return fallback
        return AttributeConstraint(column, value, op)
    if kind == "and":
        _check_unknown(obj, ("kind", "parts"), prefix, issues)
        parts = obj.get("parts")
        if not isinstance(parts, list) or not parts:
            issues.add(f"{prefix}parts", "expected a non-empty array of constraints")
            return fallback
        parsed = tuple(
            parse_constraint(part, f"{prefix}parts[{i}]", issues, depth + 1)
            for i, part in enumerate(parts)
        )
        return ConjunctionConstraint(parsed)
    issues.add(
        f"{field}.kind",
        f"unknown constraint kind {kind!r} (known: and, attribute, keyword, none)",
    )
    return fallback


def constraint_to_wire(constraint: Constraint) -> Dict[str, Any]:
    """Inverse of :func:`parse_constraint` (used by EXPLAIN echoes and
    round-trip tests)."""
    if isinstance(constraint, KeywordConstraint):
        return {"kind": "keyword", "column": constraint.column, "keyword": constraint.keyword}
    if isinstance(constraint, AttributeConstraint):
        return {
            "kind": "attribute",
            "column": constraint.column,
            "value": constraint.value,
            "op": constraint.op,
        }
    if isinstance(constraint, ConjunctionConstraint):
        return {"kind": "and", "parts": [constraint_to_wire(p) for p in constraint.parts]}
    return {"kind": "none"}


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
_QUERY_FIELDS = (
    "entity1",
    "entity2",
    "constraint1",
    "constraint2",
    "max_length",
    "k",
    "ranking",
)


def _parse_query_object(
    payload: Any, prefix: str, issues: _Issues, extra_allowed: Tuple[str, ...] = ()
) -> Optional[TopologyQuery]:
    obj = _require_object(payload, prefix.rstrip(".") or "$", issues)
    if obj is None:
        return None
    _check_unknown(obj, _QUERY_FIELDS + extra_allowed, prefix, issues)
    entity1 = _parse_str(obj, "entity1", prefix, issues)
    entity2 = _parse_str(obj, "entity2", prefix, issues)
    constraint1 = (
        parse_constraint(obj["constraint1"], f"{prefix}constraint1", issues)
        if "constraint1" in obj
        else NoConstraint()
    )
    constraint2 = (
        parse_constraint(obj["constraint2"], f"{prefix}constraint2", issues)
        if "constraint2" in obj
        else NoConstraint()
    )
    max_length = 3
    if "max_length" in obj:
        parsed = _parse_bounded_int(
            obj["max_length"], f"{prefix}max_length", issues, 1, MAX_LENGTH_BOUND
        )
        if parsed is not None:
            max_length = parsed
    k: Optional[int] = None
    if "k" in obj and obj["k"] is not None:
        k = _parse_bounded_int(obj["k"], f"{prefix}k", issues, 1, MAX_K)
    ranking = "freq"
    if "ranking" in obj:
        value = obj["ranking"]
        if value not in RANKING_SCHEMES:
            issues.add(
                f"{prefix}ranking",
                f"unknown ranking scheme (known: {', '.join(RANKING_SCHEMES)})",
            )
        else:
            ranking = value
    if issues.items:
        return None
    assert entity1 is not None and entity2 is not None
    return TopologyQuery(
        entity1,
        entity2,
        constraint1,
        constraint2,
        max_length=max_length,
        k=k,
        ranking=ranking,
    )


def _parse_method(obj: dict, prefix: str, issues: _Issues) -> Optional[str]:
    method = obj.get("method")
    if method is None:
        return None
    if not isinstance(method, str) or method.lower() not in METHOD_CLASSES:
        issues.add(
            f"{prefix}method",
            f"unknown method (known: {', '.join(sorted(METHOD_CLASSES))})",
        )
        return None
    return method.lower()


def parse_query_request(payload: Any) -> Tuple[TopologyQuery, Optional[str]]:
    """Body of ``POST /query`` / ``POST /explain`` ->
    ``(query, method or None)``.  Raises :class:`RequestValidationError`
    listing every invalid field."""
    issues = _Issues()
    obj = _require_object(payload, "$", issues)
    issues.raise_if_any()
    assert obj is not None
    method = _parse_method(obj, "", issues)
    query = _parse_query_object(obj, "", issues, extra_allowed=("method",))
    issues.raise_if_any()
    assert query is not None
    return query, method


def parse_query_many_request(
    payload: Any,
) -> Tuple[List[TopologyQuery], Optional[str], int, str]:
    """Body of ``POST /query_many`` ->
    ``(queries, method, parallel, mode)``."""
    issues = _Issues()
    obj = _require_object(payload, "$", issues)
    issues.raise_if_any()
    assert obj is not None
    _check_unknown(obj, ("queries", "method", "parallel", "mode"), "", issues)
    method = _parse_method(obj, "", issues)
    parallel = 1
    if "parallel" in obj:
        parsed = _parse_bounded_int(obj["parallel"], "parallel", issues, 1, MAX_PARALLEL)
        if parsed is not None:
            parallel = parsed
    mode = obj.get("mode", "thread")
    if mode not in ("thread", "process"):
        issues.add("mode", "must be 'thread' or 'process'")
        mode = "thread"
    raw = obj.get("queries")
    queries: List[TopologyQuery] = []
    if not isinstance(raw, list) or not raw:
        issues.add("queries", "expected a non-empty array of query objects")
    elif len(raw) > MAX_BATCH:
        issues.add("queries", f"batch of {len(raw)} exceeds the limit of {MAX_BATCH}")
    else:
        for i, item in enumerate(raw):
            sub = _Issues()
            query = _parse_query_object(item, f"queries[{i}].", sub)
            issues.items.extend(sub.items)
            if query is not None:
                queries.append(query)
    issues.raise_if_any()
    return queries, method, parallel, mode


_REBUILD_FIELDS = ("max_length", "parallel", "per_pair_path_limit")


def parse_rebuild_request(payload: Any) -> Dict[str, Any]:
    """Body of ``POST /rebuild`` -> build kwargs overrides.

    An empty body (or ``{}``) means "rebuild exactly like before" —
    :func:`~repro.service.facade.resolve_rebuild_config` reuses the
    previous build's recorded configuration.  The overridable subset is
    deliberately small: the refresh knobs an operator of an evolving
    database actually turns."""
    issues = _Issues()
    if payload is None:
        return {}
    obj = _require_object(payload, "$", issues)
    issues.raise_if_any()
    assert obj is not None
    _check_unknown(obj, _REBUILD_FIELDS, "", issues)
    kwargs: Dict[str, Any] = {}
    if "max_length" in obj:
        parsed = _parse_bounded_int(obj["max_length"], "max_length", issues, 1, MAX_LENGTH_BOUND)
        if parsed is not None:
            kwargs["max_length"] = parsed
    if "parallel" in obj:
        parsed = _parse_bounded_int(obj["parallel"], "parallel", issues, 1, MAX_PARALLEL)
        if parsed is not None:
            kwargs["parallel"] = parsed
    if "per_pair_path_limit" in obj:
        value = obj["per_pair_path_limit"]
        if value is None:
            kwargs["per_pair_path_limit"] = None
        else:
            parsed = _parse_bounded_int(value, "per_pair_path_limit", issues, 1, 1_000_000)
            if parsed is not None:
                kwargs["per_pair_path_limit"] = parsed
    issues.raise_if_any()
    return kwargs


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def result_to_wire(result: Any, include_work: bool = False) -> Dict[str, Any]:
    """:class:`MethodResult` -> JSON-native dict (the ``/query`` body)."""
    wire: Dict[str, Any] = {
        "method": result.method,
        "generation": result.generation,
        "count": len(result.tids),
        "tids": list(result.tids),
        "scores": list(result.scores) if result.scores is not None else None,
        "elapsed_seconds": result.elapsed_seconds,
        "planning_seconds": result.planning_seconds,
        "plan_choice": result.plan_choice,
    }
    if include_work:
        wire["work"] = dict(result.work)
    return wire


def plan_to_wire(plan: QueryPlan, query: Optional[TopologyQuery] = None) -> Dict[str, Any]:
    """:class:`QueryPlan` -> JSON-native dict (the ``/explain`` body)."""
    return {
        "method": plan.method,
        "strategy": plan.strategy,
        "plan_class": plan.plan_class.describe(),
        "pairs_table": plan.pairs_table,
        "alternatives": [
            {
                "strategy": alt.strategy,
                "estimated_cost": alt.estimated_cost,
                "calibration_factor": alt.calibration_factor,
                "calibrated_cost": alt.calibrated_cost,
                "chosen": alt.strategy == plan.strategy,
            }
            for alt in plan.alternatives
        ],
        "display": plan.display(query),
    }


def _cache_stats_to_wire(stats: CacheStats) -> Dict[str, Any]:
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "requests": stats.requests,
        "hit_rate": stats.hit_rate,
        "size": stats.size,
        "capacity": stats.capacity,
    }


def _plan_cache_stats_to_wire(stats: PlanCacheStats) -> Dict[str, Any]:
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "requests": stats.requests,
        "hit_rate": stats.hit_rate,
        "size": stats.size,
        "capacity": stats.capacity,
        "invalidations": stats.invalidations,
    }


def server_stats_to_wire(stats: Any, latency: Dict[str, Dict[str, float]]) -> Dict[str, Any]:
    """One :class:`~repro.service.server.ServerStats` snapshot (plus the
    latency snapshots) -> the ``GET /stats`` body.

    Every counter in the payload is derived from the *single*
    ``ServerStats`` value the caller captured, never from a second read
    of the live server — that is what keeps ``hits + misses ==
    requests`` exact in the face of concurrent traffic (the stress suite
    polls this endpoint mid-hammer and asserts the invariants on every
    payload it sees)."""
    return {
        "generation": stats.generation,
        "requests": stats.requests,
        "executions": stats.executions,
        "coalesced": stats.coalesced,
        "failures": stats.failures,
        "rebuilds": stats.rebuilds,
        "restores": stats.restores,
        "in_flight": stats.in_flight,
        "result_cache": _cache_stats_to_wire(stats.result_cache),
        "plan_cache": _plan_cache_stats_to_wire(stats.plan_cache),
        "latency": latency,
    }
