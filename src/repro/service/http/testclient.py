"""A minimal in-repo ASGI test client (no httpx, no starlette).

Drives an ASGI 3 application directly — no sockets — while still
exercising the full message protocol: scope construction, chunked
request bodies, streamed response frames, disconnects.  One background
event loop serves every request, from any number of caller threads,
which is exactly the topology of a real ASGI deployment (one loop, many
in-flight requests) and what the rebuild-under-load stress suite needs:
eight client threads hammering one app whose admission gate and
executor live on one loop.

>>> with TestClient(app) as client:
...     response = client.post("/query", json={...})
...     response.status, response.json()

``Response.chunks`` preserves the individual ``http.response.body``
frames, so streaming behaviour is assertable, not just the final bytes.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Response", "TestClient"]


class Response:
    """One completed HTTP exchange."""

    def __init__(
        self,
        status: int,
        headers: List[Tuple[bytes, bytes]],
        chunks: List[bytes],
    ) -> None:
        self.status = status
        self.raw_headers = headers
        self.chunks = chunks

    @property
    def headers(self) -> Dict[str, str]:
        """Header map with lower-cased names (last value wins)."""
        return {
            name.decode("latin-1").lower(): value.decode("latin-1")
            for name, value in self.raw_headers
        }

    @property
    def body(self) -> bytes:
        return b"".join(self.chunks)

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> Any:
        return json.loads(self.body)

    def ndjson(self) -> List[Any]:
        """Parse an ``application/x-ndjson`` body line by line."""
        return [json.loads(line) for line in self.body.splitlines() if line.strip()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Response(status={self.status}, bytes={len(self.body)})"


class _AppCrashed(Exception):
    """The app raised instead of completing the response."""


class TestClient:
    """Synchronous facade over an ASGI app on a shared background loop."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, app: Any, request_timeout: float = 60.0) -> None:
        self.app = app
        self.request_timeout = request_timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="asgi-testclient", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "TestClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        json_body: Any = None,
        body: Optional[bytes] = None,
        headers: Optional[Iterable[Tuple[str, str]]] = None,
        body_frames: Optional[List[bytes]] = None,
    ) -> Response:
        """Perform one exchange.  ``json_body`` wins over ``body``;
        ``body_frames`` sends the body as multiple ``http.request``
        messages (exercising the app's incremental body reader)."""
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        frames = body_frames if body_frames is not None else [body or b""]
        future = asyncio.run_coroutine_threadsafe(
            self._exchange(method.upper(), path, frames, list(headers or [])),
            self._loop,
        )
        return future.result(timeout=self.request_timeout)

    def get(self, path: str, **kwargs: Any) -> Response:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, json: Any = None, **kwargs: Any) -> Response:
        return self.request("POST", path, json_body=json, **kwargs)

    def put(self, path: str, **kwargs: Any) -> Response:
        return self.request("PUT", path, **kwargs)

    def delete(self, path: str, **kwargs: Any) -> Response:
        return self.request("DELETE", path, **kwargs)

    # ------------------------------------------------------------------
    async def _exchange(
        self,
        method: str,
        path: str,
        frames: List[bytes],
        headers: List[Tuple[str, str]],
    ) -> Response:
        if "?" in path:
            path, _, query_string = path.partition("?")
        else:
            query_string = ""
        raw_headers = [(b"host", b"testclient")] + [
            (name.lower().encode("latin-1"), value.encode("latin-1"))
            for name, value in headers
        ]
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method,
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("utf-8"),
            "query_string": query_string.encode("utf-8"),
            "root_path": "",
            "headers": raw_headers,
            "client": ("testclient", 50000),
            "server": ("testserver", 80),
        }

        to_app: List[dict] = [
            {
                "type": "http.request",
                "body": frame,
                "more_body": index < len(frames) - 1,
            }
            for index, frame in enumerate(frames)
        ]
        cursor = 0

        async def receive() -> dict:
            nonlocal cursor
            if cursor < len(to_app):
                message = to_app[cursor]
                cursor += 1
                return message
            # The request is fully delivered; a further receive() only
            # ever resolves to disconnect (after the response is done).
            return {"type": "http.disconnect"}

        status: List[int] = []
        response_headers: List[Tuple[bytes, bytes]] = []
        chunks: List[bytes] = []

        async def send(message: dict) -> None:
            if message["type"] == "http.response.start":
                status.append(message["status"])
                response_headers.extend(message.get("headers", []))
            elif message["type"] == "http.response.body":
                body = message.get("body", b"")
                if body:
                    chunks.append(body)

        await self.app(scope, receive, send)
        if not status:
            raise _AppCrashed(
                f"{method} {path}: app finished without sending a response"
            )
        return Response(status[0], response_headers, chunks)
