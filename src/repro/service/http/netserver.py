"""A stdlib HTTP/1.1 server for the ASGI app — real sockets, no deps.

Production deployments should run :class:`TopologyHttpApp` under a real
ASGI server (:func:`serve_uvicorn` does, when uvicorn is installed).
This module is the dependency-free fallback that makes the wire
protocol *testable and benchmarkable everywhere*: an asyncio
``start_server`` loop that parses HTTP/1.1 requests, drives the ASGI
interface, and writes responses back — with keep-alive and chunked
transfer encoding for streamed bodies.  The closed-loop HTTP benchmark
and the end-to-end socket tests run against this.

It is deliberately minimal: ``Content-Length`` request bodies only (no
request chunking, no trailers, no TLS), HTTP/1.0 and 1.1.  Everything a
stdlib ``http.client`` or ``curl`` sends.

>>> server = HttpServerThread(app)           # port 0 = ephemeral
>>> with server as base_url:
...     urllib.request.urlopen(base_url + "/healthz")
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["AsgiHttpServer", "HttpServerThread", "serve_uvicorn"]

_MAX_HEADER_BYTES = 64 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class AsgiHttpServer:
    """Serve an ASGI 3 app over HTTP/1.1 on an asyncio event loop."""

    def __init__(self, app: Any, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                verb, path, version, headers, body = request
                keep_alive = self._keep_alive(version, headers)
                await self._dispatch(writer, verb, path, version, headers, body, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, List[Tuple[str, str]], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean EOF between requests
            raise
        if len(head) > _MAX_HEADER_BYTES:
            raise ConnectionError("oversized request head")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ConnectionError(f"malformed request line: {lines[0]!r}")
        verb, target, version = parts
        headers: List[Tuple[str, str]] = []
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers.append((name.strip().lower(), value.strip()))
        length = 0
        for name, value in headers:
            if name == "content-length":
                try:
                    length = int(value)
                except ValueError:
                    raise ConnectionError(f"bad content-length {value!r}") from None
            elif name == "transfer-encoding":
                raise ConnectionError("request transfer-encoding not supported")
        body = await reader.readexactly(length) if length else b""
        return verb, target, version, headers, body

    @staticmethod
    def _keep_alive(version: str, headers: List[Tuple[str, str]]) -> bool:
        connection = next((v.lower() for n, v in headers if n == "connection"), "")
        if version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        verb: str,
        target: str,
        version: str,
        headers: List[Tuple[str, str]],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        path, _, query_string = target.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": version.split("/", 1)[-1],
            "method": verb.upper(),
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("utf-8"),
            "query_string": query_string.encode("utf-8"),
            "root_path": "",
            "headers": [
                (name.encode("latin-1"), value.encode("latin-1"))
                for name, value in headers
            ],
            "client": writer.get_extra_info("peername"),
            "server": writer.get_extra_info("sockname"),
        }

        delivered = False

        async def receive() -> dict:
            nonlocal delivered
            if not delivered:
                delivered = True
                return {"type": "http.request", "body": body, "more_body": False}
            return {"type": "http.disconnect"}

        # Response state machine: buffer the start message until the
        # first body frame decides between content-length (single
        # frame) and chunked transfer encoding (stream).
        state = {"start": None, "first": None, "mode": None}

        async def send(message: dict) -> None:
            kind = message["type"]
            if kind == "http.response.start":
                state["start"] = message
                return
            if kind != "http.response.body":  # pragma: no cover
                return
            chunk = message.get("body", b"")
            more = bool(message.get("more_body"))
            if state["mode"] is None:
                if not more:  # single-frame response: exact length
                    state["mode"] = "plain"
                    await self._write_head(
                        writer, state["start"], len(chunk), keep_alive, chunked=False
                    )
                    writer.write(chunk)
                    await writer.drain()
                    return
                state["mode"] = "chunked"
                await self._write_head(
                    writer, state["start"], None, keep_alive, chunked=True
                )
            if state["mode"] == "chunked":
                if chunk:
                    writer.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                if not more:
                    writer.write(b"0\r\n\r\n")
                await writer.drain()

        await self.app(scope, receive, send)

    @staticmethod
    async def _write_head(
        writer: asyncio.StreamWriter,
        start: Dict[str, Any],
        length: Optional[int],
        keep_alive: bool,
        chunked: bool,
    ) -> None:
        status = start["status"]
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}".encode("latin-1")]
        for name, value in start.get("headers", []):
            lines.append(name + b": " + value)
        if chunked:
            lines.append(b"transfer-encoding: chunked")
        else:
            lines.append(b"content-length: " + str(length).encode("ascii"))
        lines.append(
            b"connection: keep-alive" if keep_alive else b"connection: close"
        )
        writer.write(b"\r\n".join(lines) + b"\r\n\r\n")
        await writer.drain()


class HttpServerThread:
    """Run :class:`AsgiHttpServer` on a background thread's event loop.

    The synchronous entry point tests and benchmarks need: enter the
    context manager, get the base URL, hit it with any HTTP client."""

    def __init__(self, app: Any, host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = AsgiHttpServer(app, host, port)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="asgi-http-server", daemon=True
        )
        self.base_url: Optional[str] = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self) -> str:
        self._thread.start()
        host, port = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(timeout=10)
        self.base_url = f"http://{host}:{port}"
        return self.base_url

    def stop(self) -> None:
        if self._loop.is_closed():
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(
            timeout=10
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def serve_uvicorn(app: Any, host: str = "127.0.0.1", port: int = 8000, **kwargs: Any) -> None:
    """Serve under uvicorn when it is installed (optional dependency —
    the library never imports it at module level)."""
    try:
        import uvicorn
    except ImportError as error:  # pragma: no cover - optional path
        raise RuntimeError(
            "uvicorn is not installed; use HttpServerThread/AsgiHttpServer "
            "(stdlib) or `pip install uvicorn`"
        ) from error
    uvicorn.run(app, host=host, port=port, **kwargs)  # pragma: no cover
