"""The online query service: cached, batched, instrumented dispatch.

:class:`TopologyService` is the process-facing facade over a built (or
snapshot-restored) :class:`~repro.core.engine.TopologySearchSystem` —
the "online phase" box of the paper's Figure 10 turned into a
long-running component:

* **Result caching** — an LRU cache keyed on the full query identity
  ``(method, entity pair, constraints, l, k, ranking)``; repeated
  queries skip the engine entirely.  The cache is invalidated whenever
  the system rebuilds (tracked via ``build_generation``, so rebuilds
  through *or around* the service are both caught).
* **Batched execution** — :meth:`query_many` evaluates a workload in
  one call, deduplicating repeats through the cache.
* **Latency accounting** — per-method wall-clock statistics for every
  *engine execution* (cache hits excluded, so the numbers describe the
  engine, not the cache), consumed by the benchmark harness.
* **Plan visibility** — :meth:`explain` returns the engine's chosen
  :class:`~repro.core.plan.QueryPlan` with every alternative's cost;
  :meth:`plan_cache_stats` and :meth:`calibration_stats` expose the
  engine-side plan cache and learned cost factors alongside the result
  cache's hit/miss counters.

The pieces the service shares with the engine — the result cache, the
plan cache, the cost calibrator, the executor counters — are all
thread-safe, so concurrent callers get correct answers and exact
counters.  What this facade does *not* provide is request coordination:
no single-flight deduplication, no reader/writer fencing around
:meth:`rebuild`.  For a shared engine under concurrent traffic use
:class:`~repro.service.server.TopologyServer`, which layers exactly
that on top.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.engine import BuildReport, TopologySearchSystem
from repro.core.methods import MethodResult
from repro.core.plan import PlanCacheStats, QueryPlan
from repro.core.query import TopologyQuery
from repro.obs import LATENCY_BUCKETS, bucket_index
from repro.service.cache import MISSING, CacheStats, LRUCache

DEFAULT_METHOD = "fast-top-k-opt"
LATENCY_SAMPLE_WINDOW = 512


def resolve_rebuild_config(
    system: TopologySearchSystem,
    entity_pairs: Optional[Sequence[Tuple[str, str]]],
    build_kwargs: Dict[str, Any],
) -> Tuple[List[Tuple[str, str]], Dict[str, Any]]:
    """The ``(pairs, kwargs)`` a rebuild of ``system`` should use.

    Without ``entity_pairs`` the previously built pairs are reused, and
    without an explicit ``max_length`` the previous one is kept (the
    common "refresh after bulk update" case, Section 3.2) — otherwise a
    system built at l=4 would silently shrink to the ``build()`` default
    and reject all existing traffic.

    The rest of the previous build's recorded configuration — parallel
    worker/partition counts, caps, prune settings — is reused the same
    way (snapshots persist it, so this also holds for snapshot-restored
    systems); any explicit keyword wins.  Shared by
    :meth:`TopologyService.rebuild` and the concurrent
    :meth:`~repro.service.server.TopologyServer.rebuild`, which must
    agree on what "rebuild like before" means."""
    pairs = list(entity_pairs if entity_pairs is not None else system.built_pairs)
    kwargs = dict(build_kwargs)
    if "max_length" not in kwargs and system.max_length is not None:
        kwargs["max_length"] = system.max_length
    previous = system.build_config or {}
    carried = [
        "prune",
        "prune_threshold",
        "combination_cap",
        "per_pair_path_limit",
        "parallel",
    ]
    # The recorded partition count was resolved for the recorded worker
    # count; carrying it under an explicitly different ``parallel``
    # would starve (or over-chop) the new pool, so in that case let the
    # build re-derive its default.
    if "parallel" not in kwargs:
        carried.append("partitions")
    for key in carried:
        if key not in kwargs and previous.get(key) is not None:
            kwargs[key] = previous[key]
    return pairs, kwargs


@dataclass
class LatencyStats:
    """Running wall-clock statistics for one method's executions.

    Keeps exact count/total/min/max, exact per-bucket counts over the
    shared :data:`~repro.obs.LATENCY_BUCKETS` bounds (every sample ever
    recorded lands in exactly one bucket, so the bucket counts always
    sum to ``count`` — unlike the percentile window, they never forget),
    plus a bounded window of the most recent samples for percentile
    estimates.  :meth:`record` and the window reads hold an internal
    lock: many threads record into one instance, and
    ``count``/``total_seconds`` are read-modify-write updates that would
    lose increments unguarded."""

    method: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0
    _window: List[float] = field(default_factory=list, repr=False)
    _cursor: int = field(default=0, repr=False)
    _buckets: List[int] = field(
        default_factory=lambda: [0] * (len(LATENCY_BUCKETS) + 1), repr=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total_seconds += seconds
            self.min_seconds = min(self.min_seconds, seconds)
            self.max_seconds = max(self.max_seconds, seconds)
            self._buckets[bucket_index(LATENCY_BUCKETS, seconds)] += 1
            if len(self._window) < LATENCY_SAMPLE_WINDOW:
                self._window.append(seconds)
            else:  # ring buffer over the most recent samples
                self._window[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % LATENCY_SAMPLE_WINDOW

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    @staticmethod
    def _nearest_rank(ordered: List[float], q: float) -> float:
        """Nearest-rank percentile of pre-sorted samples: the smallest
        sample with at least q% of them at or below it.  Computed as
        rank ``ceil(q/100 * n)`` (1-indexed, clamped to [1, n]) — an
        explicit rank, not ``int(round(...))``, whose banker's rounding
        picked the off-by-one rank for p50 of an even-sized window
        (e.g. index 2 of 4 samples instead of 1)."""
        if not ordered:
            return 0.0
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[min(len(ordered), max(1, rank)) - 1]

    def percentile(self, q: float) -> float:
        """Windowed nearest-rank percentile (q in [0, 100]) over recent
        samples."""
        with self._lock:
            window = list(self._window)
        return self._nearest_rank(sorted(window), q)

    def snapshot(self) -> Dict[str, Any]:
        """All statistics from ONE lock acquisition: counters,
        percentiles, and buckets describe the same instant.  (The old
        version read the counters, released the lock, then re-locked
        once per percentile — concurrent ``record()`` calls could slip
        between, yielding a p50 and p95 from *different* windows than
        the count in the same payload.  The HTTP ``/stats`` endpoint
        serves this dict verbatim, so the tear was wire-visible.)

        ``buckets`` holds exact per-bucket counts over the shared
        ``LATENCY_BUCKETS`` bounds (``le`` lists the upper edges; the
        final count is the implicit +Inf bucket).  The counts sum to
        ``count`` — they cover every sample ever recorded, not just the
        percentile window — so `/metrics` can export this snapshot as a
        Prometheus histogram without inventing samples."""
        with self._lock:
            count = self.count
            total = self.total_seconds
            minimum = self.min_seconds
            maximum = self.max_seconds
            ordered = sorted(self._window)
            buckets = list(self._buckets)
        return {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
            "min_seconds": 0.0 if count == 0 else minimum,
            "max_seconds": maximum,
            "p50_seconds": self._nearest_rank(ordered, 50),
            "p95_seconds": self._nearest_rank(ordered, 95),
            "p99_seconds": self._nearest_rank(ordered, 99),
            "buckets": {"le": list(LATENCY_BUCKETS), "counts": buckets},
        }


class TopologyService:
    """Cached query dispatch over a :class:`TopologySearchSystem`."""

    def __init__(
        self,
        system: TopologySearchSystem,
        cache_size: int = 1024,
        default_method: str = DEFAULT_METHOD,
    ) -> None:
        self.system = system
        self.default_method = default_method.lower()
        self._cache = LRUCache(cache_size)
        self._latency: Dict[str, LatencyStats] = {}
        self._generation = system.build_generation

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        path: str,
        cache_size: int = 1024,
        default_method: str = DEFAULT_METHOD,
    ) -> "TopologyService":
        """Cold-start a service from a :mod:`repro.persist` snapshot."""
        return cls(
            TopologySearchSystem.from_snapshot(path),
            cache_size=cache_size,
            default_method=default_method,
        )

    def save(self, path: str) -> None:
        """Snapshot the underlying system (see :mod:`repro.persist`)."""
        self.system.save(path)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def query(
        self, query: TopologyQuery, method: Optional[str] = None
    ) -> MethodResult:
        """Evaluate one query, serving repeats from the LRU cache.

        The cache key is the pair ``(method, query)``; ``TopologyQuery``
        is a frozen dataclass, so the key covers the entity pair, both
        constraints, ``max_length``, ``k``, and the ranking scheme."""
        name = (method or self.default_method).lower()
        self._check_generation()
        key = (name, query)
        cached = self._cache.get(key, MISSING)
        if cached is not MISSING:  # any cached value is a hit, even a
            return cached          # falsy/empty result
        result = self.system.search(query, method=name)
        self._latency.setdefault(name, LatencyStats(name)).record(
            result.elapsed_seconds
        )
        self._cache.put(key, result)
        return result

    def query_many(
        self,
        queries: Iterable[TopologyQuery],
        method: Optional[str] = None,
    ) -> List[MethodResult]:
        """Evaluate a batch in submission order.  Duplicates within the
        batch are computed once and served from cache afterwards."""
        return [self.query(q, method=method) for q in queries]

    def explain(
        self, query: TopologyQuery, method: Optional[str] = None
    ) -> QueryPlan:
        """The plan :meth:`query` would execute (without executing it),
        with every alternative's estimated and calibrated cost — render
        it with :meth:`~repro.core.plan.QueryPlan.display`."""
        return self.system.explain(query, (method or self.default_method).lower())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def rebuild(
        self,
        entity_pairs: Optional[Sequence[Tuple[str, str]]] = None,
        **build_kwargs: Any,
    ) -> BuildReport:
        """Re-run the offline phase in place and invalidate the cache.

        The previous build's configuration is reused unless overridden —
        see :func:`resolve_rebuild_config` for the exact rules.  Cache
        invalidation is untouched by how the build ran: ``build()``
        bumps ``build_generation`` for serial and parallel builds alike,
        and the generation check below drops the stale cache.

        This rebuilds the *live* system in place — queries racing it can
        see half-built state.  :class:`~repro.service.server.TopologyServer`
        offers the concurrent-safe variant: it builds a new generation
        on a cloned base and hot-swaps it in."""
        pairs, build_kwargs = resolve_rebuild_config(
            self.system, entity_pairs, build_kwargs
        )
        report = self.system.build(pairs, **build_kwargs)
        self._check_generation()  # drops the now-stale cache
        return report

    def invalidate(self) -> None:
        """Drop every cached result (counters survive)."""
        self._cache.clear()

    def _check_generation(self) -> None:
        """Drop the cache if the system was rebuilt behind our back."""
        if self.system.build_generation != self._generation:
            self._cache.clear()
            self._generation = self.system.build_generation

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def plan_cache_stats(self) -> PlanCacheStats:
        """The engine-side plan cache's counters (plans are cached per
        query *class*, results per full query identity)."""
        return self.system.plan_cache_stats()

    def calibration_stats(self) -> Dict[str, Any]:
        """Learned per-strategy cost factors and observation counts."""
        return self.system.calibrator.snapshot()

    def latency_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-method engine-execution latency snapshots (cache hits do
        not contribute — they would measure the cache, not the engine)."""
        return {name: stats.snapshot() for name, stats in sorted(self._latency.items())}

    def reset_latency_stats(self) -> None:
        self._latency.clear()
