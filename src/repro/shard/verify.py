"""Prove a shard split lossless against the unsharded reference.

Two levels of check, both over exported store states
(:meth:`TopologyStore.export_state` / :func:`repro.persist.read_store_state`):

1. **Exact filters** — each shard's routed rows must be *exactly* the
   reference rows whose E1 endpoint hashes to that shard, in the
   reference's row order; each shard's replicated parts must equal the
   reference's.  This is the strong per-shard statement.
2. **Canonical union digest** — the shards' states, unioned and
   canonicalized (rows sorted under a stable key), must hash equal to
   the canonicalized reference.  Row order inside a store is
   meaningful (digests are order-sensitive) but not recoverable from a
   union of shards, so the union digest deliberately compares the
   *order-free* canonical form; check 1 is what pins the order.

The acceptance test for sharded serving is digest equality here plus
nine-method answer equality in the coordinator tests.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ShardError
from repro.shard.build import shard_of


def _row_key(row: Sequence[Any]) -> Tuple[str, str, int]:
    """Stable sort key for an (e1, e2, tid) row.  Node ids may be ints,
    strings, bytes, or tuples — mutually unorderable, so compare their
    reprs (stable for these types) and break ties on the integer TID."""
    return (repr(row[0]), repr(row[1]), row[2])


def _canonical_signatures(signatures: Any) -> List[List[str]]:
    """Class-signature collections appear as tuple-of-tuples (topology
    records, order canonical) or frozenset-of-tuples (pair catalog,
    unordered); both canonicalize to a sorted list of lists."""
    return sorted([list(sig) for sig in signatures])


def _canonical_topology(record: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "tid": record["tid"],
        "key": record["key"],
        "entity_pair": list(record["entity_pair"]),
        "endpoint_indices": list(record["endpoint_indices"]),
        # Record order of signatures is canonical per topology; keep it.
        "class_signatures": [list(sig) for sig in record["class_signatures"]],
        "frequency": record["frequency"],
        "scores": dict(record["scores"]),
    }


def _canonical_pair(pair: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "e1": repr(pair["e1"]),
        "e2": repr(pair["e2"]),
        "entity_pair": list(pair["entity_pair"]),
        "class_signatures": _canonical_signatures(pair["class_signatures"]),
    }


def canonical_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """An order-free, JSON-ready canonical form of a store state: rows
    sorted under stable keys, node ids rendered via ``repr``.  Equal
    canonical forms mean equal stores up to row order."""
    return {
        "topologies": sorted(
            (_canonical_topology(t) for t in state["topologies"]),
            key=lambda t: t["tid"],
        ),
        "alltops_rows": [
            [repr(e1), repr(e2), tid]
            for e1, e2, tid in sorted(state["alltops_rows"], key=_row_key)
        ],
        "lefttops_rows": [
            [repr(e1), repr(e2), tid]
            for e1, e2, tid in sorted(state["lefttops_rows"], key=_row_key)
        ],
        "excptops_rows": [
            [repr(e1), repr(e2), tid]
            for e1, e2, tid in sorted(state["excptops_rows"], key=_row_key)
        ],
        "pruned_tids": sorted(state["pruned_tids"]),
        "pairs": sorted(
            (_canonical_pair(p) for p in state["pairs"]),
            key=lambda p: (p["e1"], p["e2"], p["entity_pair"]),
        ),
        "truncated_pairs": state["truncated_pairs"],
    }


def state_digest(state: Dict[str, Any]) -> str:
    """SHA-256 over the canonical form.  Unlike
    :meth:`TopologyStore.state_digest` this is row-order-insensitive —
    use it when comparing a union of shards to a reference."""
    text = json.dumps(
        canonical_state(state), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _require_replicated_equal(
    states: Sequence[Dict[str, Any]], key: str
) -> None:
    first = json.dumps(
        canonical_state(states[0])[key], sort_keys=True
    )
    for index, state in enumerate(states[1:], start=1):
        if json.dumps(canonical_state(state)[key], sort_keys=True) != first:
            raise ShardError(
                f"replicated component {key!r} differs between shard 0 "
                f"and shard {index}"
            )


def union_state(states: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge shard states back into one store state.

    Replicated components (topology catalog, ExcpTops, pruned TIDs,
    truncation counter) must be identical across shards — taking shard
    0's copy is then sound.  Routed components concatenate; a routed
    row appearing in two shards means the split double-counted and is
    an error.  The result's row order is concatenation order; compare
    it via :func:`state_digest`, not the order-sensitive store digest.
    """
    if not states:
        raise ShardError("cannot union an empty shard-state list")
    for key in ("topologies", "excptops_rows", "pruned_tids"):
        _require_replicated_equal(states, key)
    truncated = {state["truncated_pairs"] for state in states}
    if len(truncated) != 1:
        raise ShardError(
            f"replicated component 'truncated_pairs' differs across "
            f"shards: {sorted(truncated)}"
        )

    merged: Dict[str, Any] = {
        "topologies": list(states[0]["topologies"]),
        "alltops_rows": [],
        "lefttops_rows": [],
        "excptops_rows": list(states[0]["excptops_rows"]),
        "pruned_tids": list(states[0]["pruned_tids"]),
        "pairs": [],
        "truncated_pairs": states[0]["truncated_pairs"],
    }
    for kind in ("alltops_rows", "lefttops_rows"):
        seen: Dict[Tuple[str, str, int], int] = {}
        for index, state in enumerate(states):
            for row in state[kind]:
                key = _row_key(row)
                if key in seen:
                    raise ShardError(
                        f"{kind} row {row!r} appears in both shard "
                        f"{seen[key]} and shard {index}"
                    )
                seen[key] = index
            merged[kind].extend(state[kind])
    seen_pairs: Dict[Tuple[str, str], int] = {}
    for index, state in enumerate(states):
        for pair in state["pairs"]:
            key = (repr(pair["e1"]), repr(pair["e2"]))
            if key in seen_pairs:
                raise ShardError(
                    f"pair catalog entry {key} appears in both shard "
                    f"{seen_pairs[key]} and shard {index}"
                )
            seen_pairs[key] = index
        merged["pairs"].extend(state["pairs"])
    return merged


def union_digest(states: Sequence[Dict[str, Any]]) -> str:
    """Canonical digest of the shard union — equals
    ``state_digest(reference)`` iff the split was lossless."""
    return state_digest(union_state(states))


def verify_split(
    reference_state: Dict[str, Any], shard_states: Sequence[Dict[str, Any]]
) -> None:
    """Assert a split is lossless; raise :class:`ShardError` otherwise.

    Checks, per shard ``i`` of ``n``: routed rows equal the reference
    rows with ``shard_of(e1) == i`` in reference order; replicated
    parts equal the reference's.  Then the union digest must equal the
    reference's canonical digest."""
    num_shards = len(shard_states)
    if num_shards < 1:
        raise ShardError("cannot verify an empty shard-state list")
    ref_canonical = canonical_state(reference_state)
    for index, state in enumerate(shard_states):
        for kind in ("alltops_rows", "lefttops_rows"):
            expected = [
                row
                for row in reference_state[kind]
                if shard_of(row[0], num_shards) == index
            ]
            if list(state[kind]) != expected:
                raise ShardError(
                    f"shard {index} {kind} does not match the E1-bucket "
                    f"filter of the reference ({len(state[kind])} rows "
                    f"vs {len(expected)} expected)"
                )
        expected_pairs = [
            _canonical_pair(p)
            for p in reference_state["pairs"]
            if shard_of(p["e1"], num_shards) == index
        ]
        got_pairs = [_canonical_pair(p) for p in state["pairs"]]
        if got_pairs != expected_pairs:
            raise ShardError(
                f"shard {index} pair catalog does not match the "
                f"E1-bucket filter of the reference"
            )
        shard_canonical = canonical_state(state)
        for key in ("topologies", "excptops_rows", "pruned_tids"):
            if shard_canonical[key] != ref_canonical[key]:
                raise ShardError(
                    f"shard {index} replicated component {key!r} "
                    f"differs from the reference"
                )
        if state["truncated_pairs"] != reference_state["truncated_pairs"]:
            raise ShardError(
                f"shard {index} truncated_pairs="
                f"{state['truncated_pairs']} differs from reference "
                f"{reference_state['truncated_pairs']}"
            )
    if union_digest(shard_states) != state_digest(reference_state):
        raise ShardError(
            "shard union digest does not match the reference digest"
        )
