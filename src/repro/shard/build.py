"""Split a built system into N self-contained shard snapshots.

Routing rule (fixed per scheme version, recorded in every shard's
metadata and in the manifest):

    ``shard_of(e1) = stable_partition(e1, num_shards)``

where ``e1`` is the row's E1 endpoint — the *build-orientation* source
entity, i.e. the first element of every AllTops/LeftTops/pair-catalog
row.  Routing by one endpoint (never by the pair) keeps all rows of a
given source entity on one shard, so a shard's LeftTops is exactly the
LeftTops a from-scratch build over that shard's sources would produce.

What is replicated rather than routed, and why, is documented on the
package (:mod:`repro.shard`).  The split is **serving-oriented**: the
builder process holds the full store while splitting (clone one shard
at a time, save, drop), so the memory *budget* a shard set buys applies
to the serving processes, not to the offline build.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ShardError
from repro.obs import span as obs_span
from repro.obs import tracer as obs_tracer
from repro.parallel.partition import histogram_skew, stable_partition
from repro.shard.manifest import write_manifest

#: Routing-scheme identifier stored in shard metadata and manifests.
#: Bump the suffix if the routing rule or the replication set ever
#: changes — coordinators refuse to mix scheme versions.
SHARD_SCHEME = "crc32-e1/v1"

#: Max/mean routed-row skew above which the split logs a structured
#: warning: past 2x, half the nominal scatter-gather speedup is gone.
SKEW_WARNING_THRESHOLD = 2.0

_LOG = logging.getLogger("repro.shard")


def shard_of(node_id: Any, num_shards: int) -> int:
    """The shard owning an E1 endpoint — CRC-32 bucket of the node id,
    identical in every process and on every run."""
    return stable_partition(node_id, num_shards)


def shard_set_id(reference_digest: str, num_shards: int) -> str:
    """Deterministic identity of a shard set: same store + same shard
    count + same scheme => same id, so re-splitting is idempotent and a
    coordinator can tell sibling shards from strays."""
    text = f"{reference_digest}:{num_shards}:{SHARD_SCHEME}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def split_state(
    state: Dict[str, Any], num_shards: int
) -> List[Dict[str, Any]]:
    """Split an exported store state into ``num_shards`` shard states.

    Routed keys (``alltops_rows``, ``lefttops_rows``, ``pairs``) are
    filtered by E1 bucket with their original row order preserved;
    everything else is replicated.  The shard states share the
    reference state's (immutable) topology records, so splitting costs
    one pass over the routed rows and no record copies.
    """
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1, got {num_shards}")
    shards: List[Dict[str, Any]] = []
    for index in range(num_shards):
        shards.append(
            {
                "topologies": list(state["topologies"]),
                "alltops_rows": [],
                "lefttops_rows": [],
                "excptops_rows": list(state["excptops_rows"]),
                "pruned_tids": list(state["pruned_tids"]),
                "pairs": [],
                "truncated_pairs": state["truncated_pairs"],
            }
        )
    for kind in ("alltops_rows", "lefttops_rows"):
        for row in state[kind]:
            shards[shard_of(row[0], num_shards)][kind].append(row)
    for pair in state["pairs"]:
        shards[shard_of(pair["e1"], num_shards)]["pairs"].append(pair)
    return shards


@dataclass
class ShardSplitReport:
    """What a split produced, for logs, stats, and benchmarks."""

    num_shards: int
    scheme: str
    set_id: str
    manifest_path: str
    shard_paths: List[str]
    alltops_histogram: Tuple[int, ...]
    lefttops_histogram: Tuple[int, ...]
    pairs_histogram: Tuple[int, ...]
    replicated_topologies: int
    replicated_excptops: int
    file_bytes: List[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    spans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def row_histogram(self) -> Tuple[int, ...]:
        """Routed rows per shard (AllTops + LeftTops) — the load each
        shard actually scans at query time."""
        return tuple(
            a + l
            for a, l in zip(self.alltops_histogram, self.lefttops_histogram)
        )

    @property
    def skew(self) -> float:
        """Max/mean of :attr:`row_histogram` (1.0 = balanced)."""
        return histogram_skew(self.row_histogram)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "num_shards": self.num_shards,
            "scheme": self.scheme,
            "set_id": self.set_id,
            "manifest_path": self.manifest_path,
            "shard_paths": list(self.shard_paths),
            "alltops_histogram": list(self.alltops_histogram),
            "lefttops_histogram": list(self.lefttops_histogram),
            "pairs_histogram": list(self.pairs_histogram),
            "row_histogram": list(self.row_histogram),
            "skew": self.skew,
            "replicated_topologies": self.replicated_topologies,
            "replicated_excptops": self.replicated_excptops,
            "file_bytes": list(self.file_bytes),
            "elapsed_seconds": self.elapsed_seconds,
            "spans": list(self.spans),
        }


def _warn_on_skew(report: ShardSplitReport) -> None:
    if report.skew <= SKEW_WARNING_THRESHOLD:
        return
    # Structured (JSON) payload so log scrapers can alert on it without
    # parsing prose; mirrors the shape /stats exposes.
    _LOG.warning(
        "shard split skew %.2fx exceeds %.1fx: %s",
        report.skew,
        SKEW_WARNING_THRESHOLD,
        json.dumps(
            {
                "event": "shard_skew",
                "set_id": report.set_id,
                "num_shards": report.num_shards,
                "skew": report.skew,
                "row_histogram": list(report.row_histogram),
            },
            sort_keys=True,
        ),
    )


def split_system(
    system,
    num_shards: int,
    directory,
    stem: str = "shard",
    verify: bool = True,
) -> ShardSplitReport:
    """Split a built system into ``num_shards`` snapshot files plus a
    manifest, and (by default) verify the split lossless.

    Writes ``<stem>-<i>-of-<n>.topo`` for each shard and
    ``<stem>.manifest.json`` into ``directory`` (created if missing).
    Shards are produced one at a time — clone base, adopt the shard's
    store, save, drop — so peak builder memory is one full system plus
    one shard, not N shards.

    With ``verify=True`` the saved files are read back and checked
    against the reference state (exact per-shard row filters plus
    canonical union digest, :func:`repro.shard.verify.verify_split`),
    so a returned report certifies the on-disk set, not the in-memory
    intent.
    """
    from repro.core.store import TopologyStore
    from repro.persist import read_store_state, save_system

    if system.store is None:
        raise ShardError("cannot split an unbuilt system: run build() first")
    start = time.perf_counter()
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)

    with obs_span(
        "shard.split", ingress=True, num_shards=num_shards, scheme=SHARD_SCHEME
    ) as split_span:
        with obs_span("split.state"):
            reference_state = system.store.export_state()
            set_id = shard_set_id(system.store.state_digest(), num_shards)
            shard_states = split_state(reference_state, num_shards)
            calibration = system.calibrator.export_state()

        paths: List[str] = []
        file_bytes: List[int] = []
        with obs_span("split.save"):
            for index, state in enumerate(shard_states):
                path = os.path.join(
                    directory, f"{stem}-{index}-of-{num_shards}.topo"
                )
                clone = system.clone_base()
                clone.adopt_store(
                    TopologyStore.from_state(state, system.weak_rules),
                    max_length=system.max_length,
                    built_pairs=system.built_pairs,
                    include_alltops=True,
                    validate=False,
                    build_config=system.build_config,
                )
                clone.restore_calibration(calibration)
                save_system(
                    clone,
                    path,
                    shard={
                        "index": index,
                        "count": num_shards,
                        "scheme": SHARD_SCHEME,
                        "set_id": set_id,
                    },
                )
                del clone  # bound peak memory to one clone at a time
                paths.append(path)
                file_bytes.append(os.path.getsize(path))

            manifest = write_manifest(
                os.path.join(directory, f"{stem}.manifest.json"),
                set_id=set_id,
                scheme=SHARD_SCHEME,
                shard_paths=paths,
            )

        if verify:
            from repro.shard.verify import verify_split

            with obs_span("split.verify"):
                verify_split(
                    reference_state, [read_store_state(p) for p in paths]
                )

    split_spans: List[Dict[str, Any]] = []
    if split_span.trace_id is not None:
        split_spans = [
            s.to_wire() for s in obs_tracer().trace_spans(split_span.trace_id)
        ]
    report = ShardSplitReport(
        num_shards=num_shards,
        scheme=SHARD_SCHEME,
        set_id=set_id,
        manifest_path=manifest.path,
        shard_paths=paths,
        alltops_histogram=tuple(
            len(s["alltops_rows"]) for s in shard_states
        ),
        lefttops_histogram=tuple(
            len(s["lefttops_rows"]) for s in shard_states
        ),
        pairs_histogram=tuple(len(s["pairs"]) for s in shard_states),
        replicated_topologies=len(reference_state["topologies"]),
        replicated_excptops=len(reference_state["excptops_rows"]),
        file_bytes=file_bytes,
        elapsed_seconds=time.perf_counter() - start,
        spans=split_spans,
    )
    _warn_on_skew(report)
    return report
