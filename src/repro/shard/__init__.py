"""Sharded topology store: split one built store into N snapshots.

The offline phase produces a single :class:`~repro.core.store.TopologyStore`
whose serving footprint (AllTops/LeftTops plus the base relations) can
outgrow one machine's memory.  This package splits a built system into
``N`` **self-contained** shard snapshots:

* AllTops, LeftTops, and the pair catalog are **routed** — each row goes
  to the shard owning its E1 endpoint's CRC-32 bucket
  (:func:`shard_of`, the same :func:`~repro.parallel.partition.stable_partition`
  the partitioned build uses, so build partitioning and serving
  sharding agree by construction);
* ExcpTops, the topology catalog (TopInfo: global frequencies and
  scores), the pruned-TID set, and the base relations are **replicated**
  to every shard.  Replication is what keeps every shard's answer a
  subset of the global answer: the pruned fast-* methods re-check
  candidate pairs by chain-joining the *base* tables with
  ``NOT EXISTS ExcpTops``, and an exception row filed under another
  shard's bucket would otherwise turn into a false positive; global
  scores are what make per-shard top-k lists mergeable without a second
  round-trip.

Each shard is an ordinary :mod:`repro.persist` snapshot (loadable by
``load_system`` like any other) with shard membership recorded in its
metadata, so a shard set degrades gracefully into N independently
inspectable engines.  A JSON manifest (:mod:`repro.shard.manifest`)
names the set; :mod:`repro.shard.verify` proves a split lossless by
canonical-union digest against the unsharded reference.

>>> from repro.shard import split_system, read_manifest
>>> report = split_system(system, num_shards=4, directory="shards/")
>>> manifest = read_manifest(report.manifest_path)

Serving over a shard set is :class:`repro.service.ShardCoordinator`.
"""

from repro.shard.build import (
    SHARD_SCHEME,
    SKEW_WARNING_THRESHOLD,
    ShardSplitReport,
    shard_of,
    shard_set_id,
    split_state,
    split_system,
)
from repro.shard.manifest import (
    MANIFEST_FORMAT,
    ShardManifest,
    read_manifest,
    write_manifest,
)
from repro.shard.verify import (
    canonical_state,
    state_digest,
    union_digest,
    union_state,
    verify_split,
)

__all__ = [
    "MANIFEST_FORMAT",
    "SHARD_SCHEME",
    "SKEW_WARNING_THRESHOLD",
    "ShardManifest",
    "ShardSplitReport",
    "canonical_state",
    "read_manifest",
    "shard_of",
    "shard_set_id",
    "split_state",
    "split_system",
    "state_digest",
    "union_digest",
    "union_state",
    "verify_split",
]
