"""Shard-set manifest: one small JSON file naming N shard snapshots.

The manifest is the unit a coordinator opens.  It stores shard paths
*relative to its own directory* so a shard set can be moved or mounted
elsewhere as a unit; the parsed :class:`ShardManifest` resolves them
back to absolute paths.  Reading a manifest cross-checks every shard
file's own embedded membership metadata (index, count, scheme, set id)
against the manifest, so a stray or stale snapshot dropped into the
directory is rejected up front rather than serving wrong answers.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ShardError

MANIFEST_FORMAT = "repro-shard-manifest/1"


@dataclass(frozen=True)
class ShardManifest:
    """A parsed, path-resolved shard-set manifest."""

    path: str
    set_id: str
    scheme: str
    count: int
    shard_paths: Tuple[str, ...]
    created_at: float

    def shard_path(self, index: int) -> str:
        if not 0 <= index < self.count:
            raise ShardError(
                f"shard index {index} out of range for a "
                f"{self.count}-shard set"
            )
        return self.shard_paths[index]


def write_manifest(
    path, set_id: str, scheme: str, shard_paths: Sequence[str]
) -> ShardManifest:
    """Write a manifest for an already-saved shard set and return the
    parsed form.  Shard order in ``shard_paths`` is shard index order."""
    target = os.path.abspath(os.fspath(path))
    base = os.path.dirname(target)
    resolved = tuple(os.path.abspath(os.fspath(p)) for p in shard_paths)
    created_at = time.time()
    payload = {
        "format": MANIFEST_FORMAT,
        "set_id": set_id,
        "scheme": scheme,
        "count": len(resolved),
        "shards": [
            {"index": i, "path": os.path.relpath(p, base)}
            for i, p in enumerate(resolved)
        ],
        "created_at": created_at,
    }
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, target)
    return ShardManifest(
        path=target,
        set_id=set_id,
        scheme=scheme,
        count=len(resolved),
        shard_paths=resolved,
        created_at=created_at,
    )


def read_manifest(path, check_snapshots: bool = True) -> ShardManifest:
    """Parse and validate a shard-set manifest.

    With ``check_snapshots`` (the default) every listed snapshot's own
    shard metadata must agree with the manifest — same set id, scheme,
    count, and the index the manifest lists it under.  Raises
    :class:`ShardError` for a malformed manifest, a missing shard file,
    or any membership mismatch."""
    target = os.path.abspath(os.fspath(path))
    if not os.path.exists(target):
        raise ShardError(f"shard manifest {target!r} does not exist")
    try:
        with open(target, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ShardError(f"shard manifest {target!r} is unreadable: {exc}")
    if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
        raise ShardError(
            f"shard manifest {target!r} has format "
            f"{payload.get('format') if isinstance(payload, dict) else None!r};"
            f" expected {MANIFEST_FORMAT!r}"
        )
    try:
        set_id = payload["set_id"]
        scheme = payload["scheme"]
        count = payload["count"]
        shards = payload["shards"]
    except KeyError as exc:
        raise ShardError(f"shard manifest {target!r} is missing key {exc}")
    if count != len(shards):
        raise ShardError(
            f"shard manifest {target!r} declares {count} shards but "
            f"lists {len(shards)}"
        )
    indices = sorted(entry.get("index") for entry in shards)
    if indices != list(range(count)):
        raise ShardError(
            f"shard manifest {target!r} lists indices {indices}; "
            f"expected exactly 0..{count - 1}"
        )
    base = os.path.dirname(target)
    by_index = {entry["index"]: entry for entry in shards}
    resolved = tuple(
        os.path.normpath(os.path.join(base, by_index[i]["path"]))
        for i in range(count)
    )
    manifest = ShardManifest(
        path=target,
        set_id=set_id,
        scheme=scheme,
        count=count,
        shard_paths=resolved,
        created_at=payload.get("created_at", 0.0),
    )
    if check_snapshots:
        _check_membership(manifest)
    return manifest


def _check_membership(manifest: ShardManifest) -> None:
    from repro.persist import snapshot_info

    for index, path in enumerate(manifest.shard_paths):
        if not os.path.exists(path):
            raise ShardError(
                f"shard {index} snapshot {path!r} does not exist"
            )
        shard = snapshot_info(path).shard
        if shard is None:
            raise ShardError(
                f"snapshot {path!r} carries no shard metadata; it is a "
                f"whole-store snapshot, not shard {index} of a set"
            )
        expected = {
            "index": index,
            "count": manifest.count,
            "scheme": manifest.scheme,
            "set_id": manifest.set_id,
        }
        got = {key: shard.get(key) for key in expected}
        if got != expected:
            raise ShardError(
                f"snapshot {path!r} membership {got} does not match "
                f"manifest entry {expected}"
            )
