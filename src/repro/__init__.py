"""Reproduction of "Topology Search over Biological Databases"
(Guo, Shanmugasundaram, Yona; ICDE 2007).

Packages:

* :mod:`repro.graph` — labeled multigraphs, canonical forms, paths,
  schema-level topology enumeration (Section 2.1 / 3.1);
* :mod:`repro.relational` — the host relational engine with DGJ
  operators and a System-R optimizer (Sections 5.3-5.4);
* :mod:`repro.biozon` — the Biozon-style schema, the Figure-3 fixture,
  and the synthetic data generator;
* :mod:`repro.core` — topology definitions, the offline
  computation/pruning pipeline, and the nine query methods (Sections
  2-6);
* :mod:`repro.parallel` — the partitioned multi-process offline build
  (hash-bucketed fan-out, serial-order merge, bit-identical output);
* :mod:`repro.persist` — schema-versioned SQLite snapshots of a built
  system (save once, cold-start in milliseconds);
* :mod:`repro.shard` — split a built store into verified
  self-contained shard snapshots (routed by the partition hash);
* :mod:`repro.service` — the online query service: LRU result cache,
  batched execution, per-method latency statistics, and the
  scatter-gather shard coordinator;
* :mod:`repro.analysis` — frequency distributions, Zipf fits, report
  rendering for the benchmark harnesses.
"""

__version__ = "1.4.0"

from repro.core import (
    AttributeConstraint,
    InstanceRetriever,
    KeywordConstraint,
    NoConstraint,
    TopologyQuery,
    TopologySearchSystem,
)

__all__ = [
    "AttributeConstraint",
    "InstanceRetriever",
    "KeywordConstraint",
    "NoConstraint",
    "TopologyQuery",
    "TopologySearchSystem",
    "__version__",
]
