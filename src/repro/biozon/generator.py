"""Synthetic Biozon-style database generator.

The paper evaluates on the real Biozon integration (GenBank + SwissProt
+ ...), which is not redistributable.  This generator produces a
database with the *statistical properties the experiments rely on*:

* **Zipf-skewed topology frequencies** (Figure 11): most entity pairs
  are related by one simple path; few pairs participate in complex
  multi-class relationships.  This emerges from the mostly-1:1
  ``encodes`` backbone plus sparse unigene/interaction overlays.
* **Rare complex motifs** (Figure 16): operon-like DNAs encode several
  proteins, and some of those protein pairs also interact — planted and
  recorded so benches can verify they are discovered.
* **Weak-path regions** (Section 6.2.3): unigene clusters also contain
  unrelated EST DNA sequences, creating the ``P-D-P-U-D`` style paths
  that dilute topologies at l ≥ 4.
* **Controlled predicate selectivities** (Table 2): keywords are planted
  in Protein and Interaction descriptions at ~15% / ~50% / ~85% rates
  (the paper's selective / medium / unselective knobs); achieved
  fractions are recorded in :class:`PlantedTruth`.

Everything is driven by one ``random.Random(seed)`` so datasets are
fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.biozon.schema import build_empty_database, database_to_graph
from repro.errors import GeneratorError
from repro.graph.labeled_graph import LabeledGraph
from repro.relational.database import Database

# The three selectivity tiers used by the Table-2 experiments.
PROTEIN_KEYWORDS: Tuple[Tuple[str, float], ...] = (
    ("kinase", 0.15),
    ("binding", 0.50),
    ("human", 0.85),
)
INTERACTION_KEYWORDS: Tuple[Tuple[str, float], ...] = (
    ("physical", 0.15),
    ("direct", 0.50),
    ("experimental", 0.85),
)

_FILLER_WORDS = (
    "putative", "conserved", "hypothetical", "transferase", "receptor",
    "membrane", "nuclear", "mitochondrial", "ribosomal", "regulatory",
    "transcription", "factor", "subunit", "domain", "homolog", "precursor",
    "chain", "ligase", "synthase", "reductase", "carrier", "channel",
)

_DNA_TYPES: Tuple[Tuple[str, float], ...] = (
    ("mRNA", 0.60),
    ("genomic", 0.15),
    ("EST", 0.25),
)


@dataclass
class BiozonConfig:
    """Size and shape knobs for one synthetic dataset."""

    seed: int = 7
    n_proteins: int = 300
    n_dnas: Optional[int] = None          # default: 1.1 * proteins
    n_unigenes: Optional[int] = None      # default: 0.5 * proteins
    n_interactions: Optional[int] = None  # default: 0.4 * proteins
    n_families: Optional[int] = None      # default: proteins / 20
    n_pathways: Optional[int] = None      # default: families / 4
    n_structures: Optional[int] = None    # default: proteins / 5

    operon_fraction: float = 0.06         # genomic DNAs encoding 2-4 proteins
    operon_interaction_prob: float = 0.6  # plant the Figure-16 motif
    multi_encoded_fraction: float = 0.08  # proteins encoded by a 2nd DNA
    tf_binding_fraction: float = 0.2      # interactions that bind a DNA
    self_regulation_prob: float = 0.3     # TF binds a DNA encoding itself
    unigene_alignment_prob: float = 0.8   # unigene contains its protein's DNA
    est_extra_prob: float = 0.35          # unigene contains unrelated ESTs
    family_membership_prob: float = 0.6
    second_family_prob: float = 0.1
    structure_prob: float = 0.25

    def __post_init__(self) -> None:
        if self.n_proteins < 4:
            raise GeneratorError("need at least 4 proteins")
        if self.n_dnas is None:
            self.n_dnas = max(4, int(self.n_proteins * 1.1))
        if self.n_unigenes is None:
            self.n_unigenes = max(2, self.n_proteins // 2)
        if self.n_interactions is None:
            self.n_interactions = max(2, int(self.n_proteins * 0.4))
        if self.n_families is None:
            self.n_families = max(2, self.n_proteins // 20)
        if self.n_pathways is None:
            self.n_pathways = max(2, self.n_families // 4)
        if self.n_structures is None:
            self.n_structures = max(2, self.n_proteins // 5)

    # -- Presets -----------------------------------------------------------
    @classmethod
    def tiny(cls, seed: int = 7) -> "BiozonConfig":
        """~100 entities; unit-test scale."""
        return cls(seed=seed, n_proteins=40)

    @classmethod
    def small(cls, seed: int = 7) -> "BiozonConfig":
        """~1k entities; integration-test scale."""
        return cls(seed=seed, n_proteins=400)

    @classmethod
    def medium(cls, seed: int = 7) -> "BiozonConfig":
        """~8k entities; the default benchmark scale."""
        return cls(seed=seed, n_proteins=3000)

    @classmethod
    def large(cls, seed: int = 7) -> "BiozonConfig":
        """~30k entities; stress scale."""
        return cls(seed=seed, n_proteins=12000)


@dataclass(frozen=True)
class OperonSystem:
    """A planted Figure-16 motif: one DNA encoding several proteins, two
    of which interact."""

    dna_id: int
    protein_ids: Tuple[int, ...]
    interacting_pair: Tuple[int, int]
    interaction_id: int


@dataclass
class PlantedTruth:
    """Ground truth recorded during generation (for tests/benches)."""

    protein_keyword_fractions: Dict[str, float] = field(default_factory=dict)
    interaction_keyword_fractions: Dict[str, float] = field(default_factory=dict)
    operons: List[OperonSystem] = field(default_factory=list)
    self_regulating: List[Tuple[int, int, int]] = field(default_factory=list)
    # ^ (protein, dna, interaction): protein encoded by dna and binding it
    est_dna_ids: List[int] = field(default_factory=list)


@dataclass
class BiozonDataset:
    """A generated database plus its ground truth."""

    database: Database
    truth: PlantedTruth
    config: BiozonConfig
    _graph: Optional[LabeledGraph] = None

    def graph(self) -> LabeledGraph:
        """The data graph (cached)."""
        if self._graph is None:
            self._graph = database_to_graph(self.database)
        return self._graph


def _zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


def _desc(rng: random.Random, plan: Sequence[Tuple[str, bool]]) -> str:
    words = list(rng.sample(_FILLER_WORDS, k=rng.randint(3, 6)))
    for keyword, include in plan:
        if include:
            words.insert(rng.randrange(len(words) + 1), keyword)
    return " ".join(words)


def generate(config: Optional[BiozonConfig] = None) -> BiozonDataset:
    """Generate a full synthetic Biozon instance."""
    config = config or BiozonConfig()
    rng = random.Random(config.seed)
    db = build_empty_database(f"biozon-synthetic-{config.seed}")
    truth = PlantedTruth()

    next_id = [1000]

    def fresh_id() -> int:
        next_id[0] += 1
        return next_id[0]

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    protein_ids = [fresh_id() for _ in range(config.n_proteins)]
    protein_rows = []
    keyword_hits = {k: 0 for k, _ in PROTEIN_KEYWORDS}
    for pid in protein_ids:
        plan = []
        for keyword, fraction in PROTEIN_KEYWORDS:
            include = rng.random() < fraction
            keyword_hits[keyword] += int(include)
            plan.append((keyword, include))
        protein_rows.append((pid, _desc(rng, plan)))
    for keyword, hits in keyword_hits.items():
        truth.protein_keyword_fractions[keyword] = hits / config.n_proteins

    dna_ids = [fresh_id() for _ in range(config.n_dnas)]
    dna_rows = []
    dna_types: Dict[int, str] = {}
    for did in dna_ids:
        r = rng.random()
        acc = 0.0
        dna_type = _DNA_TYPES[-1][0]
        for name, fraction in _DNA_TYPES:
            acc += fraction
            if r < acc:
                dna_type = name
                break
        dna_types[did] = dna_type
        if dna_type == "EST":
            truth.est_dna_ids.append(did)
        dna_rows.append((did, dna_type, _desc(rng, [])))

    unigene_ids = [fresh_id() for _ in range(config.n_unigenes)]
    unigene_rows = [(uid, _desc(rng, [])) for uid in unigene_ids]

    family_ids = [fresh_id() for _ in range(config.n_families)]
    family_rows = [(fid, f"family {fid}") for fid in family_ids]

    pathway_ids = [fresh_id() for _ in range(config.n_pathways)]
    pathway_rows = [(wid, f"pathway {wid}") for wid in pathway_ids]

    structure_ids = [fresh_id() for _ in range(config.n_structures)]
    structure_rows = [
        (sid, rng.choice(("x-ray", "nmr", "model")), f"structure {sid}")
        for sid in structure_ids
    ]

    # ------------------------------------------------------------------
    # encodes: mostly 1:1 backbone + operon DNAs + multi-encoded proteins
    # ------------------------------------------------------------------
    encodes_rows: List[Tuple[int, int, int]] = []
    dna_proteins: Dict[int, List[int]] = {d: [] for d in dna_ids}
    protein_dnas: Dict[int, List[int]] = {p: [] for p in protein_ids}

    def add_encodes(pid: int, did: int) -> None:
        if pid in dna_proteins[did]:
            return
        encodes_rows.append((fresh_id(), pid, did))
        dna_proteins[did].append(pid)
        protein_dnas[pid].append(did)

    genomic = [d for d in dna_ids if dna_types[d] == "genomic"]
    n_operons = max(1, int(config.n_dnas * config.operon_fraction))
    operon_dnas = genomic[:n_operons] if genomic else dna_ids[:n_operons]
    shuffled_proteins = protein_ids[:]
    rng.shuffle(shuffled_proteins)
    cursor = 0
    for did in operon_dnas:
        size = rng.randint(2, 4)
        members = []
        for _ in range(size):
            members.append(shuffled_proteins[cursor % len(shuffled_proteins)])
            cursor += 1
        for pid in dict.fromkeys(members):
            add_encodes(pid, did)

    coding = [d for d in dna_ids if dna_types[d] == "mRNA"]
    for pid in protein_ids:
        if protein_dnas[pid]:
            continue
        if not coding:
            break
        add_encodes(pid, rng.choice(coding))
    protein_weights = _zipf_weights(len(protein_ids))
    n_multi = int(config.n_proteins * config.multi_encoded_fraction)
    for pid in rng.choices(protein_ids, weights=protein_weights, k=n_multi):
        did = rng.choice(dna_ids)
        if dna_types[did] != "EST":
            add_encodes(pid, did)

    # ------------------------------------------------------------------
    # unigenes: cluster proteins; align with their DNAs; attach ESTs
    # ------------------------------------------------------------------
    uni_encodes_rows: List[Tuple[int, int, int]] = []
    uni_contains_rows: List[Tuple[int, int, int]] = []
    est_pool = [d for d in dna_ids if dna_types[d] == "EST"]
    for uid in unigene_ids:
        cluster_size = rng.choices((1, 2, 3), weights=(0.7, 0.22, 0.08))[0]
        members = rng.sample(protein_ids, k=min(cluster_size, len(protein_ids)))
        contained: List[int] = []
        for pid in members:
            uni_encodes_rows.append((fresh_id(), uid, pid))
            if protein_dnas[pid] and rng.random() < config.unigene_alignment_prob:
                did = rng.choice(protein_dnas[pid])
                if did not in contained:
                    uni_contains_rows.append((fresh_id(), uid, did))
                    contained.append(did)
        if est_pool and rng.random() < config.est_extra_prob:
            for did in rng.sample(est_pool, k=min(rng.randint(1, 2), len(est_pool))):
                if did not in contained:
                    uni_contains_rows.append((fresh_id(), uid, did))
                    contained.append(did)

    # ------------------------------------------------------------------
    # interactions: protein-protein, TF-DNA binding, planted operons
    # ------------------------------------------------------------------
    interaction_rows: List[Tuple[int, str, str]] = []
    interacts_protein_rows: List[Tuple[int, int, int]] = []
    interacts_dna_rows: List[Tuple[int, int, int]] = []
    ikeyword_hits = {k: 0 for k, _ in INTERACTION_KEYWORDS}

    def new_interaction(itype: str) -> int:
        iid = fresh_id()
        plan = []
        for keyword, fraction in INTERACTION_KEYWORDS:
            include = rng.random() < fraction
            ikeyword_hits[keyword] += int(include)
            plan.append((keyword, include))
        interaction_rows.append((iid, itype, _desc(rng, plan)))
        return iid

    for _ in range(config.n_interactions):
        if rng.random() < config.tf_binding_fraction:
            pid = rng.choice(protein_ids)
            iid = new_interaction("tf-binding")
            interacts_protein_rows.append((fresh_id(), pid, iid))
            if protein_dnas[pid] and rng.random() < config.self_regulation_prob:
                did = rng.choice(protein_dnas[pid])
                truth.self_regulating.append((pid, did, iid))
            else:
                did = rng.choice(dna_ids)
            interacts_dna_rows.append((fresh_id(), did, iid))
        else:
            a, b = rng.sample(protein_ids, k=2)
            iid = new_interaction("protein-protein")
            interacts_protein_rows.append((fresh_id(), a, iid))
            interacts_protein_rows.append((fresh_id(), b, iid))

    for did in operon_dnas:
        members = dna_proteins[did]
        if len(members) >= 2 and rng.random() < config.operon_interaction_prob:
            a, b = rng.sample(members, k=2)
            iid = new_interaction("operon-pair")
            interacts_protein_rows.append((fresh_id(), a, iid))
            interacts_protein_rows.append((fresh_id(), b, iid))
            truth.operons.append(
                OperonSystem(did, tuple(members), (a, b), iid)
            )
    if interaction_rows:
        for keyword, hits in ikeyword_hits.items():
            truth.interaction_keyword_fractions[keyword] = hits / len(interaction_rows)

    # ------------------------------------------------------------------
    # families, pathways, structures
    # ------------------------------------------------------------------
    belongs_rows: List[Tuple[int, int, int]] = []
    family_weights = _zipf_weights(len(family_ids))
    for pid in protein_ids:
        if rng.random() < config.family_membership_prob:
            fid = rng.choices(family_ids, weights=family_weights)[0]
            belongs_rows.append((fresh_id(), pid, fid))
            if rng.random() < config.second_family_prob:
                other = rng.choices(family_ids, weights=family_weights)[0]
                if other != fid:
                    belongs_rows.append((fresh_id(), pid, other))

    in_pathway_rows: List[Tuple[int, int, int]] = []
    for fid in family_ids:
        for wid in rng.sample(pathway_ids, k=min(rng.randint(0, 2), len(pathway_ids))):
            in_pathway_rows.append((fresh_id(), fid, wid))

    manifests_rows: List[Tuple[int, int, int]] = []
    available_structures = structure_ids[:]
    rng.shuffle(available_structures)
    for pid in protein_ids:
        if available_structures and rng.random() < config.structure_prob:
            sid = available_structures.pop()
            manifests_rows.append((fresh_id(), pid, sid))
        if not available_structures:
            break

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    db.table("Protein").bulk_load(protein_rows)
    db.table("DNA").bulk_load(dna_rows)
    db.table("Unigene").bulk_load(unigene_rows)
    db.table("Interaction").bulk_load(interaction_rows)
    db.table("Family").bulk_load(family_rows)
    db.table("Pathway").bulk_load(pathway_rows)
    db.table("Structure").bulk_load(structure_rows)
    db.table("Encodes").bulk_load(encodes_rows)
    db.table("UniEncodes").bulk_load(uni_encodes_rows)
    db.table("UniContains").bulk_load(uni_contains_rows)
    db.table("InteractsProtein").bulk_load(interacts_protein_rows)
    db.table("InteractsDNA").bulk_load(interacts_dna_rows)
    db.table("Belongs").bulk_load(belongs_rows)
    db.table("InPathway").bulk_load(in_pathway_rows)
    db.table("Manifests").bulk_load(manifests_rows)
    return BiozonDataset(database=db, truth=truth, config=config)
