"""The paper's running example database (Figure 3 / Figure 6).

Edge ids and endpoints are reconstructed from Figures 3, 4 and 6 of the
paper; the derived results are pinned in tests:

* ``PS(78, 215, 3) = {l2, l3, l6}``; l2/l3 share an equivalence class,
* ``3-Top(78, 215) = {T3, T4}``; ``3-Top(32, 214) = {T1}``;
  ``3-Top(44, 742) = {T2}``,
* query Q1 = (Protein ~ 'enzyme', DNA type 'mRNA') selects proteins
  {32, 78, 44} (not 34) and all three DNAs.
"""

from __future__ import annotations

from repro.biozon.schema import build_empty_database
from repro.relational.database import Database

PROTEINS = [
    (32, "Ubiquitin-conjugating enzyme UBCi"),
    (78, "Ubiquitin-conjugating enzyme variant MMS2"),
    (34, "vitamin D inducible protein [Homo sapiens]"),
    (44, "ubiquitin-conjugating enzyme E2B (homolog)"),
]

UNIGENES = [
    (103, "ubiquitin-conjugating enzyme E2"),
    (150, "hypothetical protein FLJ13855"),
    (188, "ubiquitin-conjugating enzyme E2S"),
    (194, "ubiquitin-conjugating enzyme E2S"),
]

DNAS = [
    (214, "mRNA", "Oryctolagus cuniculus ubiquitin-conjugating enzyme UBCi mRNA"),
    (215, "mRNA", "Homo sapiens MMS2 (MMS2) mRNA, complete cds."),
    (742, "mRNA", "Human ubiquitin carrier protein (E2-EPF) mRNA, complete cds"),
]

# (edge id, PID, DID)
ENCODES = [
    (57, 32, 214),
    (44, 34, 215),
]

# (edge id, UID, PID)
UNI_ENCODES = [
    (25, 103, 78),
    (14, 103, 34),
    (31, 150, 78),
    (42, 188, 44),
    (11, 194, 44),
]

# (edge id, UID, DID)
UNI_CONTAINS = [
    (62, 103, 215),
    (93, 150, 215),
    (121, 188, 742),
    (37, 194, 742),
]

# Q1 from Example 2.1: proteins whose description contains 'enzyme',
# DNAs of type 'mRNA'.
Q1_PROTEIN_KEYWORD = "enzyme"
Q1_DNA_TYPE = "mRNA"
Q1_EXPECTED_PROTEINS = {32, 78, 44}
Q1_EXPECTED_DNAS = {214, 215, 742}


def build_figure3_database() -> Database:
    """The exact Figure-3 instance loaded into the Biozon schema."""
    db = build_empty_database("biozon-figure3")
    db.table("Protein").bulk_load(PROTEINS)
    db.table("Unigene").bulk_load(UNIGENES)
    db.table("DNA").bulk_load(DNAS)
    db.table("Encodes").bulk_load(ENCODES)
    db.table("UniEncodes").bulk_load(UNI_ENCODES)
    db.table("UniContains").bulk_load(UNI_CONTAINS)
    return db
