"""Biozon substrate: schema (Figure 1), the Figure-3 fixture, the
synthetic data generator, and the relational->graph mapping."""

from repro.biozon.figure3 import (
    Q1_DNA_TYPE,
    Q1_EXPECTED_DNAS,
    Q1_EXPECTED_PROTEINS,
    Q1_PROTEIN_KEYWORD,
    build_figure3_database,
)
from repro.biozon.generator import (
    INTERACTION_KEYWORDS,
    PROTEIN_KEYWORDS,
    BiozonConfig,
    BiozonDataset,
    OperonSystem,
    PlantedTruth,
    generate,
)
from repro.biozon.schema import (
    ENTITY_TYPES,
    RELATIONSHIPS,
    TYPE_LETTERS,
    RelationshipSpec,
    biozon_schema_graph,
    build_empty_database,
    database_to_graph,
)

__all__ = [
    "BiozonConfig",
    "BiozonDataset",
    "ENTITY_TYPES",
    "INTERACTION_KEYWORDS",
    "OperonSystem",
    "PROTEIN_KEYWORDS",
    "PlantedTruth",
    "Q1_DNA_TYPE",
    "Q1_EXPECTED_DNAS",
    "Q1_EXPECTED_PROTEINS",
    "Q1_PROTEIN_KEYWORD",
    "RELATIONSHIPS",
    "RelationshipSpec",
    "TYPE_LETTERS",
    "biozon_schema_graph",
    "build_empty_database",
    "build_figure3_database",
    "database_to_graph",
    "generate",
]
