"""The Biozon-style schema (paper Figure 1) and its graph mapping.

The paper's Biozon snapshot stores "28 million biological objects
(stored in seven tables) and 9.6 million binary relationships between
the objects (stored in eight tables)".  We reproduce exactly that
shape: seven entity tables and eight relationship tables.

Entity sets: Protein, DNA, Unigene, Interaction, Family, Pathway,
Structure.  Relationship sets (undirected at the model level):

=================  ==========  ==========
relationship       endpoint    endpoint
=================  ==========  ==========
encodes            Protein     DNA
uni_encodes        Unigene     Protein
uni_contains       Unigene     DNA
interacts_protein  Protein     Interaction
interacts_dna      DNA         Interaction
belongs            Protein     Family
in_pathway         Family      Pathway
manifests          Protein     Structure
=================  ==========  ==========

With this schema there are exactly **ten** schema paths of length ≤ 3
between Protein and DNA — the count the paper quotes for Biozon — which
is asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.schema_graph import SchemaEdge, SchemaGraph
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType

# Short letters used by the paper's figures (P, D, U, I, F, W, S).
TYPE_LETTERS: Dict[str, str] = {
    "Protein": "P",
    "DNA": "D",
    "Unigene": "U",
    "Interaction": "I",
    "Family": "F",
    "Pathway": "W",
    "Structure": "S",
}

ENTITY_TYPES: Tuple[str, ...] = tuple(TYPE_LETTERS)


@dataclass(frozen=True)
class RelationshipSpec:
    """How one relationship table maps to a typed graph edge."""

    table: str          # relational table name
    edge_type: str      # graph edge label
    left_table: str     # entity table of the first endpoint
    left_column: str    # FK column holding the first endpoint id
    right_table: str
    right_column: str


RELATIONSHIPS: Tuple[RelationshipSpec, ...] = (
    RelationshipSpec("Encodes", "encodes", "Protein", "PID", "DNA", "DID"),
    RelationshipSpec("UniEncodes", "uni_encodes", "Unigene", "UID", "Protein", "PID"),
    RelationshipSpec("UniContains", "uni_contains", "Unigene", "UID", "DNA", "DID"),
    RelationshipSpec(
        "InteractsProtein", "interacts_protein", "Protein", "PID", "Interaction", "IID"
    ),
    RelationshipSpec("InteractsDNA", "interacts_dna", "DNA", "DID", "Interaction", "IID"),
    RelationshipSpec("Belongs", "belongs", "Protein", "PID", "Family", "FID"),
    RelationshipSpec("InPathway", "in_pathway", "Family", "FID", "Pathway", "WID"),
    RelationshipSpec("Manifests", "manifests", "Protein", "PID", "Structure", "SID"),
)


def biozon_schema_graph() -> SchemaGraph:
    """The ER schema as an undirected multigraph (paper Figure 1)."""
    edges = [
        SchemaEdge(spec.edge_type, spec.left_table, spec.right_table)
        for spec in RELATIONSHIPS
    ]
    return SchemaGraph(list(ENTITY_TYPES), edges)


def _entity_schemas() -> List[TableSchema]:
    text = DataType.TEXT
    integer = DataType.INT
    return [
        TableSchema(
            "Protein",
            [Column("ID", integer, True), Column("DESC", text)],
            primary_key="ID",
        ),
        TableSchema(
            "DNA",
            [Column("ID", integer, True), Column("TYPE", text), Column("DESC", text)],
            primary_key="ID",
        ),
        TableSchema(
            "Unigene",
            [Column("ID", integer, True), Column("DESC", text)],
            primary_key="ID",
        ),
        TableSchema(
            "Interaction",
            [Column("ID", integer, True), Column("ITYPE", text), Column("DESC", text)],
            primary_key="ID",
        ),
        TableSchema(
            "Family",
            [Column("ID", integer, True), Column("NAME", text)],
            primary_key="ID",
        ),
        TableSchema(
            "Pathway",
            [Column("ID", integer, True), Column("NAME", text)],
            primary_key="ID",
        ),
        TableSchema(
            "Structure",
            [Column("ID", integer, True), Column("METHOD", text), Column("NAME", text)],
            primary_key="ID",
        ),
    ]


def _relationship_schemas() -> List[TableSchema]:
    integer = DataType.INT
    out: List[TableSchema] = []
    for spec in RELATIONSHIPS:
        out.append(
            TableSchema(
                spec.table,
                [
                    Column("ID", integer, True),
                    Column(spec.left_column, integer, True),
                    Column(spec.right_column, integer, True),
                ],
                primary_key="ID",
            )
        )
    return out


def build_empty_database(name: str = "biozon") -> Database:
    """Create the fifteen Biozon tables with the indexes the paper
    assumes ("indices on all the primary keys and queried attributes"):
    primary-key hash indexes plus FK hash indexes on both endpoints of
    every relationship table."""
    db = Database(name)
    for schema in _entity_schemas():
        db.create_table(schema)
    for schema, spec in zip(_relationship_schemas(), RELATIONSHIPS):
        table = db.create_table(schema)
        table.create_hash_index("by_left", [spec.left_column])
        table.create_hash_index("by_right", [spec.right_column])
    return db


def database_to_graph(db: Database) -> LabeledGraph:
    """Materialize the data graph of Section 2.1 from the relational
    instance: one node per entity row (typed by its table), one edge per
    relationship row (typed by the relationship).

    Entity ids must be globally unique across entity tables (the paper
    assumes "the IDs of different biological objects are not
    overlapping"); edge ids are namespaced per relationship table.
    """
    graph = LabeledGraph()
    for entity_type in ENTITY_TYPES:
        table = db.table(entity_type)
        id_pos = table.schema.column_position("ID")
        for row in table.rows:
            graph.add_node(row[id_pos], entity_type)
    for spec in RELATIONSHIPS:
        table = db.table(spec.table)
        id_pos = table.schema.column_position("ID")
        left_pos = table.schema.column_position(spec.left_column)
        right_pos = table.schema.column_position(spec.right_column)
        for row in table.rows:
            graph.add_edge(
                (spec.edge_type, row[id_pos]),
                row[left_pos],
                row[right_pos],
                spec.edge_type,
            )
    return graph


def relationship_by_edge_type(edge_type: str) -> RelationshipSpec:
    for spec in RELATIONSHIPS:
        if spec.edge_type == edge_type:
            return spec
    raise KeyError(edge_type)
