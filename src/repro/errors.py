"""Exception hierarchy for the topology-search reproduction.

Every package raises subclasses of :class:`ReproError` so applications can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or graph operation."""


class SchemaError(ReproError):
    """Invalid relational schema definition or violation."""


class CatalogError(ReproError):
    """Unknown table, column, or index referenced."""


class SqlError(ReproError):
    """Error while tokenizing, parsing, or binding a SQL statement."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be parsed."""


class SqlBindError(SqlError):
    """The SQL parsed but references unknown tables/columns or is ambiguous."""


class ExecutionError(ReproError):
    """Runtime failure inside the query executor."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan."""


class TopologyError(ReproError):
    """Invalid topology-search request or inconsistent topology store."""


class GeneratorError(ReproError):
    """Invalid synthetic-database generator configuration."""


class ShardError(TopologyError):
    """Inconsistent shard set: mismatched routing metadata, missing or
    duplicate shard indices, or a split that fails verification."""


class ShardUnavailableError(ShardError):
    """A shard backend did not answer: its worker process is dead or its
    reply queue timed out.  Carries which shard and how long a client
    should wait before retrying — the HTTP layer maps this to
    ``503 shard_unavailable`` + ``Retry-After``."""

    def __init__(self, shard_index: int, reason: str, retry_after: int = 1) -> None:
        self.shard_index = shard_index
        self.reason = reason
        self.retry_after = max(1, int(retry_after))
        super().__init__(f"shard {shard_index} unavailable: {reason}")
