"""Analysis helpers: frequency distributions, Zipf fits, and table/plot
rendering for the benchmark harnesses."""

from repro.analysis.frequency import (
    ZipfFit,
    fit_zipf,
    frequency_table,
    head_mass,
    rank_frequency,
)
from repro.analysis.reporting import render_ascii_loglog, render_series, render_table

__all__ = [
    "ZipfFit",
    "fit_zipf",
    "frequency_table",
    "head_mass",
    "rank_frequency",
    "render_ascii_loglog",
    "render_series",
    "render_table",
]
