"""Topology frequency analysis (Section 4.2.1, Figure 11).

The paper observes that topology frequency is approximately Zipfian for
every entity-set pair: ranked by frequency, ``freq(rank) ~ C / rank^s``.
This module computes rank-frequency series from a store and fits the
Zipf exponent by least squares in log-log space, so benches can verify
the synthetic data reproduces the shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.store import TopologyStore


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of log(freq) = log(c) - s * log(rank)."""

    exponent: float
    intercept: float
    r_squared: float
    n_points: int

    @property
    def is_zipf_like(self) -> bool:
        """Heuristic for "approximately Zipfian": clearly decreasing
        with a decent log-log linear fit."""
        return self.exponent > 0.5 and self.r_squared > 0.6 and self.n_points >= 4


def rank_frequency(frequencies: Sequence[int]) -> List[Tuple[int, int]]:
    """(rank, frequency) pairs, frequency descending, rank from 1."""
    ordered = sorted((f for f in frequencies if f > 0), reverse=True)
    return [(i + 1, f) for i, f in enumerate(ordered)]


def fit_zipf(frequencies: Sequence[int]) -> ZipfFit:
    """Fit a Zipf law to a frequency list (must have >= 2 positive
    entries; degenerate inputs return a zero fit)."""
    points = rank_frequency(frequencies)
    if len(points) < 2:
        return ZipfFit(0.0, 0.0, 0.0, len(points))
    xs = [math.log(rank) for rank, _ in points]
    ys = [math.log(freq) for _, freq in points]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        return ZipfFit(0.0, mean_y, 0.0, n)
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 - (ss_res / ss_tot) if ss_tot > 0 else 1.0
    return ZipfFit(exponent=-slope, intercept=intercept, r_squared=r_squared, n_points=n)


def head_mass(frequencies: Sequence[int], head: int = 5) -> float:
    """Fraction of all pair-topology rows contributed by the ``head``
    most frequent topologies — the quantity pruning exploits."""
    ordered = sorted((f for f in frequencies if f > 0), reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0.0
    return sum(ordered[:head]) / total


def frequency_table(
    store: TopologyStore, entity_pairs: Sequence[Tuple[str, str]]
) -> Dict[str, List[int]]:
    """Figure-11 series: descending frequency list per entity-set pair,
    keyed by a short label like ``PD``."""
    from repro.biozon.schema import TYPE_LETTERS

    out: Dict[str, List[int]] = {}
    for es1, es2 in entity_pairs:
        label = TYPE_LETTERS.get(es1, es1[0]) + TYPE_LETTERS.get(es2, es2[0])
        out[label] = store.frequency_distribution(es1, es2)
    return out
