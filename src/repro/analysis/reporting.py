"""Plain-text rendering for benchmark output (paper-style tables)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a header rule, like the paper's tables."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    label: str, values: Sequence[float], max_points: int = 20
) -> str:
    """One figure series as ``label: v1 v2 v3 ...`` (down-sampled)."""
    if len(values) > max_points:
        step = len(values) / max_points
        sampled = [values[int(i * step)] for i in range(max_points)]
    else:
        sampled = list(values)
    return f"{label}: " + " ".join(_fmt(v) for v in sampled)


def render_ascii_loglog(
    series: Dict[str, Sequence[int]], width: int = 60, height: int = 16
) -> str:
    """Crude log-log scatter of rank-frequency series (Figure 11's
    visual), one symbol per series."""
    import math

    symbols = "o*x+#@%&"
    grid = [[" "] * width for _ in range(height)]
    max_rank = max((len(v) for v in series.values()), default=1)
    max_freq = max((v[0] for v in series.values() if v), default=1)
    if max_rank < 2 or max_freq < 2:
        return "(not enough data to plot)"
    for idx, (label, values) in enumerate(sorted(series.items())):
        sym = symbols[idx % len(symbols)]
        for rank, freq in enumerate(values, start=1):
            if freq <= 0:
                continue
            x = int((math.log(rank) / math.log(max_rank + 1)) * (width - 1))
            y = int((math.log(freq) / math.log(max_freq + 1)) * (height - 1))
            grid[height - 1 - y][x] = sym
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={label}" for i, label in enumerate(sorted(series))
    )
    body = "\n".join("|" + "".join(row) for row in grid)
    axis = "+" + "-" * width
    return f"{body}\n{axis}\n  log(rank) ->   ({legend})"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
