"""Legacy setup shim so `pip install -e .` works without the `wheel`
package (the execution environment is offline)."""

from setuptools import setup

setup()
