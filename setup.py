"""Packaging for the topology-search reproduction (src/ layout).

``pip install -e .`` makes ``import repro`` work without PYTHONPATH
hacks.  The library is stdlib-only by design (the SQLite persistence
layer uses the built-in ``sqlite3``); test/benchmark extras are the only
optional dependencies.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    """Single-source the version from repro/__init__.py."""
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "__init__.py")) as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="topology-search-repro",
    version=read_version(),
    description=(
        "Reproduction of 'Topology Search over Biological Databases' "
        "(Guo, Shanmugasundaram, Yona; ICDE 2007): offline topology computation, "
        "nine query methods, SQLite persistence, and a cached query service"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[],  # stdlib only
    extras_require={
        "test": ["pytest"],
        "bench": ["pytest", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Bio-Informatics",
        "Topic :: Database :: Database Engines/Servers",
    ],
)
