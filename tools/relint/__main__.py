"""``python -m tools.relint src tests benchmarks examples``."""

import sys

from tools.relint.engine import main

if __name__ == "__main__":
    sys.exit(main())
