"""relint — this repository's invariant linter.

Every rule encodes a bug this codebase actually shipped (and fixed) or
a concurrency/determinism contract its architecture depends on; the
catalog with the history behind each rule lives in
``docs/STATIC_ANALYSIS.md``.  Run it exactly like CI does::

    python -m tools.relint src tests benchmarks examples

Suppressions are inline, per-rule, and *must* carry a reason::

    with self._pool_lock:  # relint: disable=R2 (retry loop, not a snapshot)

A ``disable`` without a reason is itself a violation (R0).
"""

from tools.relint.engine import (
    Violation,
    lint_paths,
    lint_source,
    main,
)
from tools.relint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]
