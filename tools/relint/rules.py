"""The rule catalog.  Every rule encodes a shipped-and-fixed bug or a
standing contract of this codebase; ``docs/STATIC_ANALYSIS.md`` tells
each rule's story.  Rules work on the stdlib ``ast`` only.

Conventions shared by the rules:

* a "lock-ish" expression is ``self._lock`` / ``self._flight_lock`` /
  any attribute whose name ends in ``lock`` (plus ``_cond`` /
  ``_mutex`` for the torn-snapshot rule), or a ``read_locked()`` /
  ``write_locked()`` lease call;
* findings are anchored to the line of the offending node, which is
  where a suppression comment must sit.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence

__all__ = ["ALL_RULES", "Rule"]


class _Finding(NamedTuple):
    """Structural twin of :class:`tools.relint.engine.Violation` — the
    engine imports this module, so rules type against this shape and
    :func:`_make` builds the real Violation lazily."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str


def _make(rule: "Rule", node: ast.AST, message: str) -> "_Finding":
    from tools.relint.engine import Violation

    return Violation(
        "", getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
        rule.rule_id, rule.name, message,
    )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    return _dotted(call.func)


def _final_segment(name: Optional[str]) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _direct_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class Rule:
    """Base class: subclasses set ``rule_id``/``name``/``summary`` and
    implement :meth:`check`."""

    rule_id = ""
    name = ""
    summary = ""

    def check(
        self, tree: ast.AST, path: str, source: str
    ) -> Iterator["_Finding"]:  # pragma: no cover - abstract
        raise NotImplementedError
        yield


# ----------------------------------------------------------------------
# R1: SQL built by interpolation must quote its values
# ----------------------------------------------------------------------
_SQL_KEYWORD_RE = re.compile(
    r"\b(SELECT|INSERT|UPDATE|DELETE|WHERE|FROM|JOIN|VALUES|CONTAINS|"
    r"GROUP BY|ORDER BY)\b",
    re.IGNORECASE,
)


def _joined_literal_text(node: ast.JoinedStr) -> str:
    return "".join(
        part.value
        for part in node.values
        if isinstance(part, ast.Constant) and isinstance(part.value, str)
    )


class SqlInterpolationRule(Rule):
    rule_id = "R1"
    name = "sql-interpolation"
    summary = (
        "raw value interpolation into SQL text: route values through "
        "sql_quote() (PR 3's _entity_pair_filter injection)"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        for node in ast.walk(tree):
            if isinstance(node, ast.JoinedStr):
                yield from self._check_fstring(node)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Mod)
            ):
                yield from self._check_concat(node)
            elif isinstance(node, ast.Call):
                yield from self._check_format(node)

    def _check_fstring(self, node: ast.JoinedStr) -> Iterator["_Finding"]:
        literal = _joined_literal_text(node)
        if not _SQL_KEYWORD_RE.search(literal):
            return
        previous_text = ""
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                previous_text = part.value
                continue
            if not isinstance(part, ast.FormattedValue):
                continue
            # `... = '{value}'` — a value quoted by hand instead of by
            # sql_quote(); apostrophes in the value break out of the
            # literal.
            if previous_text.rstrip().endswith("'"):
                yield _make(
                    self, part.value,
                    "hand-quoted SQL value interpolation ('...{x}...'): "
                    "use sql_quote(x) and drop the quotes",
                )
            previous_text = ""

    def _check_concat(self, node: ast.BinOp) -> Iterator["_Finding"]:
        for side in (node.left, node.right):
            if (
                isinstance(side, ast.Constant)
                and isinstance(side.value, str)
                and _SQL_KEYWORD_RE.search(side.value)
            ):
                op = "%" if isinstance(node.op, ast.Mod) else "+"
                yield _make(
                    self, node,
                    f"SQL text built with '{op}': build it as an f-string "
                    "with sql_quote()d arguments instead",
                )
                return

    def _check_format(self, node: ast.Call) -> Iterator["_Finding"]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "format"
            and isinstance(func.value, ast.Constant)
            and isinstance(func.value.value, str)
            and _SQL_KEYWORD_RE.search(func.value.value)
        ):
            yield _make(
                self, node,
                "SQL text built with str.format(): use an f-string with "
                "sql_quote()d values instead",
            )


# ----------------------------------------------------------------------
# R2: one returned value must come from one lock acquisition
# ----------------------------------------------------------------------
_LOCKISH_ATTR_RE = re.compile(r"(lock|mutex|cond)$")
_LEASE_CALLS = {"read_locked", "write_locked"}


def _lock_key(ctx: ast.AST) -> Optional[str]:
    """A stable key naming the lock an expression acquires, if any."""
    if isinstance(ctx, ast.Call):
        name = _call_name(ctx)
        if name and _final_segment(name) in _LEASE_CALLS:
            return name
        return None
    name = _dotted(ctx)
    if name and _LOCKISH_ATTR_RE.search(_final_segment(name)):
        return name
    return None


class TornSnapshotRule(Rule):
    rule_id = "R2"
    name = "torn-snapshot"
    summary = (
        "a method acquiring the same lock more than once to produce one "
        "returned value can return a torn composite (PR 6's /stats bug)"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        for func in _functions(tree):
            acquisitions: Dict[str, List[ast.AST]] = {}
            returns_value = False
            for node in _direct_body(func):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        key = _lock_key(item.context_expr)
                        if key is not None:
                            acquisitions.setdefault(key, []).append(node)
                elif isinstance(node, ast.Return) and node.value is not None:
                    returns_value = True
            if not returns_value:
                continue
            for key, sites in acquisitions.items():
                if len(sites) > 1:
                    sites.sort(key=lambda node: node.lineno)
                    yield _make(
                        self, sites[1],
                        f"'{key}' acquired {len(sites)} times in "
                        f"{getattr(func, 'name', '?')}() which returns a value: "
                        "a snapshot assembled across acquisitions can tear — "
                        "read everything under one acquisition",
                    )


# ----------------------------------------------------------------------
# R3: cache.get() results must not be truth-tested
# ----------------------------------------------------------------------
def _is_cache_get(node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "get"):
        return None
    receiver = _dotted(func.value)
    if receiver and "cache" in _final_segment(receiver).lower():
        return receiver
    return None


class CacheFalsyHitRule(Rule):
    rule_id = "R3"
    name = "cache-falsy-hit"
    summary = (
        "truthiness test on a cache .get() treats cached falsy values "
        "as misses: compare against the MISSING sentinel (PR 4's LRU bug)"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        for node in ast.walk(tree):
            receiver = None
            if isinstance(node, ast.BoolOp) and node.values:
                receiver = _is_cache_get(node.values[0])
                shape = "cache.get(k) or default"
            elif isinstance(node, (ast.If, ast.While)):
                test = node.test
                if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
                    test = test.operand
                receiver = _is_cache_get(test)
                shape = "if cache.get(k)"
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], (ast.Is, ast.IsNot)):
                    left = node.left
                    comparator = node.comparators[0]
                    if (
                        isinstance(comparator, ast.Constant)
                        and comparator.value is None
                        and _is_cache_get(left)
                        and isinstance(left, ast.Call)
                        and not left.args[1:]
                    ):
                        receiver = _is_cache_get(left)
                        shape = "cache.get(k) is None"
            if receiver:
                yield _make(
                    self, node,
                    f"{shape} on '{receiver}': a cached falsy/None value "
                    "would read as a miss — call .get(key, MISSING) and "
                    "compare with 'is MISSING'",
                )


# ----------------------------------------------------------------------
# R4: executor submissions in traced packages must copy context
# ----------------------------------------------------------------------
_EXECUTOR_METHODS = {"submit", "map"}
_EXECUTOR_RECEIVER_RE = re.compile(r"(pool|executor)", re.IGNORECASE)


def _imports_obs(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro.obs"):
                return True
        elif isinstance(node, ast.Import):
            if any(alias.name.startswith("repro.obs") for alias in node.names):
                return True
    return False


class ExecutorContextRule(Rule):
    rule_id = "R4"
    name = "executor-no-context"
    summary = (
        "thread-pool submit/map in a tracing module without "
        "contextvars.copy_context(): spans detach from the request trace"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        if not _imports_obs(tree):
            return
        for func in _functions(tree):
            copies_context = any(
                isinstance(node, ast.Attribute) and node.attr == "copy_context"
                or isinstance(node, ast.Name) and node.id == "copy_context"
                for node in ast.walk(func)
            )
            if copies_context:
                continue
            for node in _direct_body(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = _dotted(callee)
                final = _final_segment(name)
                if final == "run_in_executor":
                    yield _make(
                        self, node,
                        "run_in_executor without contextvars.copy_context(): "
                        "the engine call's spans detach from the request trace",
                    )
                    continue
                if final not in _EXECUTOR_METHODS:
                    continue
                if not isinstance(callee, ast.Attribute):
                    continue
                receiver = _dotted(callee.value)
                if receiver and _EXECUTOR_RECEIVER_RE.search(
                    _final_segment(receiver)
                ):
                    yield _make(
                        self, node,
                        f"'{receiver}.{final}(...)' in a tracing module "
                        "without contextvars.copy_context(): work runs with "
                        "an empty context and its spans no longer attach "
                        "to the caller's trace",
                    )


# ----------------------------------------------------------------------
# R5: durations come from perf_counter()/monotonic(), never time.time()
# ----------------------------------------------------------------------
_DURATION_NAME_RE = re.compile(r"^_?(t0|t1|start|started|begin|began|start_time)$")


def _is_time_time_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node) in ("time.time", "time")
        and not node.args
        and not node.keywords
    )


class WallclockDurationRule(Rule):
    rule_id = "R5"
    name = "wallclock-duration"
    summary = (
        "time.time() used to compute a duration: wall clocks step under "
        "NTP — use time.perf_counter() or time.monotonic()"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                if _is_time_time_call(node.left) or _is_time_time_call(node.right):
                    yield _make(
                        self, node,
                        "duration computed from time.time(): use "
                        "time.perf_counter() (wall clocks step and slew)",
                    )
            elif isinstance(node, ast.Assign) and _is_time_time_call(node.value):
                for target in node.targets:
                    name = _final_segment(_dotted(target))
                    if name and _DURATION_NAME_RE.match(name):
                        yield _make(
                            self, node,
                            f"'{name} = time.time()' looks like a duration "
                            "start mark: use time.perf_counter() "
                            "(time.time() is for wall-clock timestamps only)",
                        )


# ----------------------------------------------------------------------
# R6: no blocking calls while holding a write lease or a _lock
# ----------------------------------------------------------------------
_BLOCKING_PREFIXES = (
    "subprocess.", "shutil.", "tempfile.", "socket.", "requests.", "urllib.",
)
_BLOCKING_EXACT = {
    "time.sleep", "sleep", "open",
    "os.remove", "os.rename", "os.replace", "os.unlink", "os.fsync",
    "os.makedirs",
}
_STRICT_LOCK_RE = re.compile(r"(^lock$|_lock$)")


def _strict_lock_key(ctx: ast.AST) -> Optional[str]:
    """Locks R6 refuses to block under: write leases and ``*_lock``
    attributes (deliberately **not** ``*_mutex`` — the writer mutexes
    exist precisely to serialize heavy work away from the hot locks)."""
    if isinstance(ctx, ast.Call):
        name = _call_name(ctx)
        if name and _final_segment(name) == "write_locked":
            return name
        return None
    name = _dotted(ctx)
    if name and _STRICT_LOCK_RE.search(_final_segment(name)):
        return name
    return None


class BlockingUnderLockRule(Rule):
    rule_id = "R6"
    name = "blocking-under-lock"
    summary = (
        "blocking call (sleep, file/socket I/O, subprocess) while holding "
        "a write lease or a _lock stalls every reader behind it"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held = [
                _strict_lock_key(item.context_expr)
                for item in node.items
            ]
            held = [key for key in held if key is not None]
            if not held:
                continue
            for inner in ast.walk(node):
                if inner is node or not isinstance(inner, ast.Call):
                    continue
                name = _dotted(inner.func)
                if name is None:
                    continue
                blocking = name in _BLOCKING_EXACT or any(
                    name.startswith(prefix) for prefix in _BLOCKING_PREFIXES
                )
                if blocking:
                    yield _make(
                        self, inner,
                        f"blocking call '{name}(...)' while holding "
                        f"'{held[0]}': every thread queueing on that lock "
                        "stalls for the call's full duration",
                    )


# ----------------------------------------------------------------------
# R7: offline build/merge paths must be deterministic
# ----------------------------------------------------------------------
_R7_PATH_RE = re.compile(r"repro[/\\](parallel|shard)[/\\]")
_UNSEEDED_RANDOM = {
    "random.random", "random.randint", "random.choice", "random.shuffle",
    "random.sample", "random.randrange", "random.getrandbits", "random.uniform",
}
_FS_ORDER = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}


class OfflineDeterminismRule(Rule):
    rule_id = "R7"
    name = "offline-determinism"
    summary = (
        "nondeterminism in repro.parallel/repro.shard build or merge "
        "paths: unseeded random, set-order iteration, unsorted directory "
        "listings break state_digest() bit-identity"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        if not _R7_PATH_RE.search(path):
            return
        sorted_wrapped = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _final_segment(_dotted(node.func)) == "sorted":
                for arg in ast.walk(node):
                    sorted_wrapped.add(id(arg))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name in _UNSEEDED_RANDOM:
                yield _make(
                    self, node,
                    f"'{name}()' in an offline build/merge path: seed an "
                    "explicit random.Random(seed) so rebuilds stay "
                    "bit-identical (state_digest contract)",
                )
            elif name in _FS_ORDER and id(node) not in sorted_wrapped:
                yield _make(
                    self, node,
                    f"'{name}()' returns filesystem order, which is not "
                    "deterministic across hosts: wrap it in sorted(...)",
                )
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                it = node.iter
                if isinstance(it, ast.Set) or (
                    isinstance(it, ast.Call)
                    and _final_segment(_dotted(it.func)) == "set"
                    and id(it) not in sorted_wrapped
                ):
                    yield _make(
                        self, it,
                        "iterating a set in an offline build/merge path: "
                        "set order is salt-dependent across processes — "
                        "iterate sorted(...) instead",
                    )


# ----------------------------------------------------------------------
# R8: metric and span names are stable dotted-lowercase literals
# ----------------------------------------------------------------------
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
_METRIC_CALLS = {"counter", "gauge", "histogram"}
_SPAN_CALLS = {"span", "obs_span"}


class MetricNameRule(Rule):
    rule_id = "R8"
    name = "metric-name-literal"
    summary = (
        "metric/span names must be stable dotted-lowercase string "
        "literals: dynamic names explode cardinality and break dashboards"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            final = _final_segment(_dotted(node.func))
            is_metric = final in _METRIC_CALLS and isinstance(
                node.func, ast.Attribute
            )
            is_span = final in _SPAN_CALLS
            if not (is_metric or is_span):
                continue
            name_arg = node.args[0]
            kind = "metric" if is_metric else "span"
            if isinstance(name_arg, (ast.JoinedStr, ast.BinOp)) or (
                isinstance(name_arg, ast.Call)
                and isinstance(name_arg.func, ast.Attribute)
                and name_arg.func.attr == "format"
            ):
                yield _make(
                    self, name_arg,
                    f"dynamic {kind} name: names must be stable string "
                    "literals — put variation in labels/tags, not the name",
                )
            elif isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                if not _METRIC_NAME_RE.match(name_arg.value):
                    yield _make(
                        self, name_arg,
                        f"{kind} name {name_arg.value!r} is not "
                        "dotted-lowercase ([a-z0-9_.])",
                    )


# ----------------------------------------------------------------------
# R9: no silently swallowed broad exceptions
# ----------------------------------------------------------------------
_BROAD_TYPES = {"Exception", "BaseException"}


def _is_broad(handler_type: Optional[ast.AST]) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD_TYPES
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


class SilentBroadExceptRule(Rule):
    rule_id = "R9"
    name = "silent-broad-except"
    summary = (
        "bare except, or a broad except whose body only passes: narrow "
        "it, or log-and-degrade so wedged workers stay diagnosable"
    )

    def check(self, tree: ast.AST, path: str, source: str) -> Iterator["_Finding"]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield _make(
                    self, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt "
                    "too — name the exceptions (Exception at the broadest)",
                )
                continue
            if not _is_broad(node.type):
                continue
            body = node.body
            swallows = all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
                for stmt in body
            )
            if swallows:
                yield _make(
                    self, node,
                    "broad except swallows the error silently: narrow the "
                    "exception types, or log what was caught before degrading",
                )


ALL_RULES: Sequence[Rule] = (
    SqlInterpolationRule(),
    TornSnapshotRule(),
    CacheFalsyHitRule(),
    ExecutorContextRule(),
    WallclockDurationRule(),
    BlockingUnderLockRule(),
    OfflineDeterminismRule(),
    MetricNameRule(),
    SilentBroadExceptRule(),
)
