"""The relint driver: file walking, suppression handling, reporting.

The engine is rule-agnostic.  It parses each file once, hands the tree
to every rule (:data:`tools.relint.rules.ALL_RULES`), then reconciles
the raw findings against the file's inline suppressions:

* ``# relint: disable=R2 (reason)`` on a line suppresses those rule ids
  on that line; on a line of its own it suppresses them on the next
  code line.
* The parenthesised reason is mandatory — a bare ``disable`` is an
  ``R0`` violation, because a suppression nobody can re-evaluate is how
  tribal memory sneaks back in.
* A suppression that never fires is also an ``R0`` violation: stale
  suppressions hide future regressions at exactly the line someone once
  decided not to look at.

Directories containing a ``.relint-fixtures`` marker file are skipped
(they hold the linter's own deliberately-violating test corpus); pass
``--include-fixtures`` to lint them anyway.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import os
import re
import sys
import tokenize
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from tools.relint.rules import ALL_RULES, Rule

__all__ = ["Violation", "lint_source", "lint_paths", "main"]

FIXTURE_MARKER = ".relint-fixtures"

SUPPRESSION_ID = "R0"
SUPPRESSION_NAME = "suppression-hygiene"

#: The full directive, matched against a COMMENT token's text.
_SUPPRESS_RE = re.compile(
    r"^#\s*relint:\s*disable=(?P<ids>[A-Z0-9, ]+?)\s*(?:\((?P<reason>[^)]*)\))?\s*$"
)
#: Anything that *starts* like the directive but fails the full match.
_DIRECTIVE_PREFIX_RE = re.compile(r"^#\s*relint:")


def _iter_comments(source: str) -> Iterable[Tuple[int, int, str]]:
    """``(line, col, text)`` for every comment token.  Tokenizing (vs a
    line scan) keeps directives inside string literals and docstrings
    inert — only real comments can suppress."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


class Violation(NamedTuple):
    """One finding, stable across output formats."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def to_wire(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "message": self.message,
        }


class _Suppression(NamedTuple):
    line: int            # line the suppression comment sits on
    applies_to: Tuple[int, ...]  # code lines it covers
    rule_ids: Tuple[str, ...]
    reason: str


def _parse_suppressions(
    source: str, known_ids: Set[str]
) -> Tuple[List[_Suppression], List[Violation]]:
    """All inline suppressions plus the R0 violations they earn.

    A suppression on a code line covers that line; a suppression on a
    comment-only line covers the next non-blank, non-comment line.
    """
    suppressions: List[_Suppression] = []
    problems: List[Violation] = []
    lines = source.splitlines()
    for index, col, text in _iter_comments(source):
        match = _SUPPRESS_RE.match(text)
        if match is None:
            if _DIRECTIVE_PREFIX_RE.match(text):
                problems.append(
                    Violation(
                        "", index, col, SUPPRESSION_ID, SUPPRESSION_NAME,
                        "malformed suppression: use "
                        "'# relint: disable=<ID> (reason)'",
                    )
                )
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        bad = [i for i in ids if i not in known_ids or i == SUPPRESSION_ID]
        if bad:
            problems.append(
                Violation(
                    "", index, 0, SUPPRESSION_ID, SUPPRESSION_NAME,
                    f"suppression names unknown or unsuppressable rule ids {bad}",
                )
            )
            continue
        if not reason:
            problems.append(
                Violation(
                    "", index, 0, SUPPRESSION_ID, SUPPRESSION_NAME,
                    f"suppression of {', '.join(ids)} has no reason — every "
                    "disable must say why, in parentheses",
                )
            )
            continue
        standalone = not lines[index - 1][:col].strip()
        if standalone:
            target = None
            for forward in range(index, len(lines)):
                candidate = lines[forward].strip()
                if candidate and not candidate.startswith("#"):
                    target = forward + 1
                    break
            applies = (index, target) if target is not None else (index,)
        else:
            applies = (index,)
        suppressions.append(_Suppression(index, applies, ids, reason))
    return suppressions, problems


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; returns surviving violations (including
    any R0 suppression-hygiene findings)."""
    active_rules = list(ALL_RULES if rules is None else rules)
    known_ids = {rule.rule_id for rule in ALL_RULES} | {SUPPRESSION_ID}
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path, error.lineno or 0, error.offset or 0,
                SUPPRESSION_ID, "parse-error",
                f"file does not parse: {error.msg}",
            )
        ]
    suppressions, problems = _parse_suppressions(source, known_ids)
    raw: List[Violation] = []
    for rule in active_rules:
        for finding in rule.check(tree, path, source):
            raw.append(finding._replace(path=path))

    covered: Dict[Tuple[int, str], _Suppression] = {}
    for suppression in suppressions:
        for line in suppression.applies_to:
            for rule_id in suppression.rule_ids:
                covered[(line, rule_id)] = suppression

    used: Set[int] = set()
    surviving: List[Violation] = []
    for violation in raw:
        suppression = covered.get((violation.line, violation.rule_id))
        if suppression is not None:
            used.add(suppression.line)
        else:
            surviving.append(violation)
    active_ids = {rule.rule_id for rule in active_rules}
    for suppression in suppressions:
        if suppression.line not in used:
            if not set(suppression.rule_ids) <= active_ids:
                # A rule filter is active and this suppression names a
                # rule that did not run — it may well fire on full runs.
                continue
            problems.append(
                Violation(
                    "", suppression.line, 0, SUPPRESSION_ID, SUPPRESSION_NAME,
                    f"suppression of {', '.join(suppression.rule_ids)} never "
                    "fires — remove it (stale suppressions hide regressions)",
                )
            )
    surviving.extend(p._replace(path=path) for p in problems)
    surviving.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return surviving


def _iter_python_files(paths: Sequence[str], include_fixtures: bool) -> Iterable[str]:
    for target in paths:
        if os.path.isfile(target):
            if target.endswith(".py"):
                yield target
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git", ".mypy_cache")
                and (
                    include_fixtures
                    or not os.path.exists(
                        os.path.join(dirpath, d, FIXTURE_MARKER)
                    )
                )
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    include_fixtures: bool = False,
) -> Tuple[List[Violation], int]:
    """Lint every ``*.py`` under ``paths``.  Returns (violations,
    files checked)."""
    violations: List[Violation] = []
    checked = 0
    for path in _iter_python_files(paths, include_fixtures):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        violations.extend(lint_source(source, path, rules))
        checked += 1
    return violations, checked


def _list_rules() -> str:
    lines = [f"{SUPPRESSION_ID:<4} {SUPPRESSION_NAME:<24} suppression must carry a reason and must fire"]
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id:<4} {rule.name:<24} {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.relint",
        description="Project-invariant static analysis for this repository.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--include-fixtures", action="store_true",
        help="lint directories carrying a .relint-fixtures marker too",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m tools.relint src tests benchmarks examples)")
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        # A typo'd path must not silently pass as "0 files, clean".
        parser.error(f"no such path(s): {missing}")

    rules: Optional[List[Rule]] = None
    if args.rule:
        wanted = set(args.rule)
        known = {rule.rule_id for rule in ALL_RULES}
        unknown = wanted - known
        if unknown:
            parser.error(f"unknown rule ids: {sorted(unknown)} (known: {sorted(known)})")
        rules = [rule for rule in ALL_RULES if rule.rule_id in wanted]

    violations, checked = lint_paths(
        args.paths, rules=rules, include_fixtures=args.include_fixtures
    )
    if args.json:
        print(
            json.dumps(
                {
                    "files_checked": checked,
                    "violations": [v.to_wire() for v in violations],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in sorted(violations, key=lambda v: (v.path, v.line, v.col)):
            print(violation.render())
        status = "clean" if not violations else f"{len(violations)} violation(s)"
        print(f"relint: {checked} file(s) checked, {status}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
