"""Repository tooling: static analysis (:mod:`tools.relint`) and the
mypy typed-surface gate (:mod:`tools.typegate`).  Nothing in here ships
with the library — ``setup.py`` packages ``src/repro`` only."""
