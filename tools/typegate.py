"""The typed-surface gate: ``python -m tools.typegate``.

Policy, in one paragraph: ``repro.obs`` and ``repro.service`` are the
*typed surfaces* — the packages other layers program against — and must
be mypy-clean, full stop.  The rest of ``src/repro`` is held to a
committed per-package error ceiling (:data:`BASELINE_PATH`) so typing
debt can only shrink: going over a ceiling fails the gate, coming in
under it prints a ratchet suggestion (run with ``--update-baseline`` to
lock in the improvement).

mypy is deliberately **not** a runtime dependency of this repository;
the container images that run the tier-1 suite do not carry it.  When
mypy is absent the gate reports ``SKIP`` and exits 0 — CI installs mypy
in its own job (see ``.github/workflows/ci.yml``) and enforces for
everyone.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "mypy_baseline.json")
CONFIG_PATH = os.path.join(REPO_ROOT, "mypy.ini")
TARGET = os.path.join("src", "repro")

#: Packages whose public surface must be completely clean.
STRICT_PACKAGES = ("obs", "service")

_ERROR_RE = re.compile(r"^(?P<path>[^:]+\.py):\d+(?::\d+)?: error: ")


def _mypy_command() -> Optional[List[str]]:
    """The mypy invocation to use, or ``None`` if mypy is unavailable."""
    if shutil.which("mypy"):
        return ["mypy"]
    try:  # an importable module without a console script still counts
        import mypy  # noqa: F401
    except ImportError:
        return None
    return [sys.executable, "-m", "mypy"]


def _package_of(path: str) -> str:
    """``src/repro/service/http/app.py`` → ``service``; top-level
    modules (``errors.py``) map to ``<root>``."""
    normalized = path.replace("\\", "/")
    marker = "src/repro/"
    at = normalized.find(marker)
    if at < 0:
        return "<other>"
    rest = normalized[at + len(marker):]
    if "/" not in rest:
        return "<root>"
    return rest.split("/", 1)[0]


def run_mypy() -> Tuple[Optional[Dict[str, int]], List[str]]:
    """Per-package error counts from one mypy run over ``src/repro``,
    plus the raw error lines.  ``(None, [])`` when mypy is absent."""
    command = _mypy_command()
    if command is None:
        return None, []
    completed = subprocess.run(
        command + ["--config-file", CONFIG_PATH, TARGET],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    counts: Dict[str, int] = {}
    errors: List[str] = []
    for line in completed.stdout.splitlines():
        match = _ERROR_RE.match(line.strip())
        if match is None:
            continue
        errors.append(line.strip())
        package = _package_of(match.group("path"))
        counts[package] = counts.get(package, 0) + 1
    return counts, errors


def load_baseline() -> Dict[str, int]:
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return {str(key): int(value) for key, value in data["ceilings"].items()}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.typegate",
        description="mypy gate: strict typed surfaces + baseline ceilings.",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the committed ceilings to the current counts",
    )
    parser.add_argument(
        "--show-errors", action="store_true",
        help="print every mypy error line, not just the summary",
    )
    args = parser.parse_args(argv)

    counts, errors = run_mypy()
    if counts is None:
        print(
            "typegate: SKIP — mypy is not installed in this environment; "
            "CI runs this gate with mypy available."
        )
        return 0

    baseline = load_baseline()
    failures: List[str] = []
    ratchets: List[str] = []

    for package in STRICT_PACKAGES:
        strict_errors = counts.get(package, 0)
        if strict_errors:
            failures.append(
                f"repro.{package} is a typed surface and must be clean; "
                f"mypy reports {strict_errors} error(s)"
            )

    for package, count in sorted(counts.items()):
        if package in STRICT_PACKAGES:
            continue
        ceiling = baseline.get(package)
        if ceiling is None:
            failures.append(
                f"package {package!r} has {count} error(s) but no committed "
                f"ceiling — add it to {os.path.relpath(BASELINE_PATH, REPO_ROOT)}"
            )
        elif count > ceiling:
            failures.append(
                f"package {package!r}: {count} error(s) exceeds the "
                f"committed ceiling of {ceiling} — new typing debt is not "
                "accepted; fix the new errors"
            )
        elif count < ceiling:
            ratchets.append(
                f"package {package!r}: {count} < ceiling {ceiling} — run "
                "'python -m tools.typegate --update-baseline' to lock it in"
            )

    if args.update_baseline:
        ceilings = {
            package: count
            for package, count in sorted(counts.items())
            if package not in STRICT_PACKAGES and count
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "comment": (
                        "Per-package mypy error ceilings for src/repro "
                        "outside the strict zone (repro.obs, repro.service). "
                        "Counts may only go down; regenerate with "
                        "python -m tools.typegate --update-baseline."
                    ),
                    "ceilings": ceilings,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"typegate: baseline rewritten ({len(ceilings)} package(s))")
        return 0

    if args.show_errors or failures:
        for line in errors:
            print(line)
    total = sum(counts.values())
    print(
        f"typegate: {total} error(s) across {len(counts)} package(s); "
        f"strict zone ({', '.join('repro.' + p for p in STRICT_PACKAGES)}): "
        f"{sum(counts.get(p, 0) for p in STRICT_PACKAGES)}"
    )
    for note in ratchets:
        print(f"typegate: ratchet available — {note}")
    for failure in failures:
        print(f"typegate: FAIL — {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
